//! A minimal JSON parser, used to *validate* telemetry JSONL output in
//! tests and CI without pulling a serialization dependency into the
//! workspace (the workspace's `serde` is an offline no-op stub).
//!
//! Supports the full JSON grammar except `\u` surrogate pairs (lone
//! escapes decode to the replacement character). Not built for speed —
//! it exists so a smoke run's sidecar file can be machine-checked.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic for tests.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Append this value as compact JSON to `out`. Non-finite numbers
    /// encode as `null` (JSON has no NaN/Infinity), matching the telemetry
    /// encoder; everything written here re-parses with [`parse`].
    pub fn write_json(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => {
                if n.is_finite() {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write_json(&mut s);
        f.write_str(&s)
    }
}

/// Append `s` as a quoted, escaped JSON string to `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the recursive-descent parser accepts. The
/// parser recurses once per `[`/`{` level, so without a cap a short
/// adversarial input like `[[[[…` overflows the thread stack (an abort,
/// not a catchable error). 128 is far beyond any telemetry or protocol
/// payload while keeping worst-case stack use a few tens of KiB.
pub const MAX_DEPTH: usize = 128;

/// Parse one complete JSON value; trailing non-whitespace is an error.
/// Inputs nested deeper than [`MAX_DEPTH`] are rejected, not recursed into.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(Json::String),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    tok.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| format!("invalid number {tok:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        *pos += 4;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape \\{}", esc as char)),
                }
            }
            Some(&c) => {
                // Copy one UTF-8 character starting at `pos`.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().expect("non-empty slice");
                if c < 0x20 {
                    return Err("unescaped control character in string".into());
                }
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth >= MAX_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} at byte {pos}",
            pos = *pos
        ));
    }
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth >= MAX_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} at byte {pos}",
            pos = *pos
        ));
    }
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Validate one telemetry JSONL line against the documented schema:
/// an object with a known `kind`, a string `name`, a finite number `t`,
/// and the kind's payload field. Returns the parsed object.
pub fn validate_telemetry_line(line: &str) -> Result<Json, String> {
    let v = parse(line)?;
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing string field \"kind\"")?
        .to_string();
    v.get("name")
        .and_then(Json::as_str)
        .ok_or("missing string field \"name\"")?;
    let t = v
        .get("t")
        .and_then(Json::as_f64)
        .ok_or("missing numeric field \"t\"")?;
    if !t.is_finite() || t < 0.0 {
        return Err(format!("timestamp {t} is not a finite non-negative number"));
    }
    let payload: &[&str] = match kind.as_str() {
        "span_open" => &[],
        "span_close" => &["dur"],
        "counter" => &["delta"],
        "gauge" | "histogram" => &["value"],
        "heartbeat" => &["epoch", "eps"],
        "registry_snapshot" => &["counters", "gauges", "histograms"],
        "trace_promoted" => &["spans"],
        "flight_record" => &["shard", "batch_seq", "generation", "start_ns", "end_ns"],
        other => return Err(format!("unknown event kind {other:?}")),
    };
    for field in payload {
        let present = matches!(
            v.get(field),
            Some(Json::Number(_)) | Some(Json::Null) // non-finite values encode as null
        );
        if !present {
            return Err(format!("kind {kind:?} requires numeric field {field:?}"));
        }
    }
    // Integer-valued fields must actually be non-negative integers.
    let integral: &[&str] = match kind.as_str() {
        "counter" => &["delta"],
        "heartbeat" => &["epoch"],
        "registry_snapshot" => &["counters", "gauges", "histograms"],
        "trace_promoted" => &["spans"],
        "flight_record" => &["shard", "batch_seq", "generation", "start_ns", "end_ns"],
        _ => &[],
    };
    for field in integral {
        if let Some(n) = v.get(field).and_then(Json::as_f64) {
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!(
                    "kind {kind:?} field {field:?} must be a non-negative integer, got {n}"
                ));
            }
        }
    }
    // Trace events carry 64-bit ids as 16-hex-digit strings; trace id 0
    // is reserved (= unsampled) and must never appear on a span line.
    let hex_ids: &[(&str, bool)] = match kind.as_str() {
        // (field, zero_allowed)
        "trace_promoted" => &[("trace", false)],
        "flight_record" => &[("trace", false), ("span", false), ("parent", true)],
        _ => &[],
    };
    for (field, zero_allowed) in hex_ids {
        let raw = v
            .get(field)
            .and_then(Json::as_str)
            .ok_or(format!("kind {kind:?} requires hex string field {field:?}"))?;
        let id = crate::trace::parse_hex16(raw).ok_or(format!(
            "kind {kind:?} field {field:?} is not a hex id: {raw:?}"
        ))?;
        if id == 0 && !zero_allowed {
            return Err(format!(
                "kind {kind:?} field {field:?} is 0 (reserved = unsampled)"
            ));
        }
    }
    if kind == "trace_promoted" {
        v.get("reason")
            .and_then(Json::as_str)
            .ok_or("kind \"trace_promoted\" requires string field \"reason\"")?;
    }
    if kind == "flight_record" {
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .ok_or("kind \"flight_record\" requires string field \"status\"")?;
        crate::trace::SpanStatus::parse(status).ok_or(format!("unknown span status {status:?}"))?;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .expect("valid JSON");
        assert_eq!(
            v.get("a"),
            Some(&Json::Array(vec![
                Json::Number(1.0),
                Json::Number(2.5),
                Json::Number(-300.0)
            ]))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse(r#"{"a": 1} extra"#).is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // Well past MAX_DEPTH: must return Err, not recurse to an abort.
        let deep_array = "[".repeat(100_000);
        assert!(parse(&deep_array).is_err());
        let mut deep_object = String::new();
        for _ in 0..100_000 {
            deep_object.push_str("{\"a\":");
        }
        assert!(parse(&deep_object).is_err());
        // Mixed nesting trips the same cap.
        let mixed: String = "[{\"k\":".repeat(50_000);
        assert!(parse(&mixed).is_err());
    }

    #[test]
    fn nesting_just_under_the_cap_still_parses() {
        let depth = MAX_DEPTH - 1;
        let text = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&text).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&over).is_err());
    }

    #[test]
    fn writer_output_reparses_to_the_same_value() {
        let cases = [
            r#"{"a": [1, 2.5, -300], "b": {"c": true, "d": null}, "e": "x\ny"}"#,
            r#"[]"#,
            r#"{}"#,
            r#""quote \" backslash \\ tab \t""#,
            r#"[0.125, -7, 1e300]"#,
        ];
        for case in cases {
            let v = parse(case).expect("valid JSON");
            let mut s = String::new();
            v.write_json(&mut s);
            assert_eq!(parse(&s).expect("writer emits valid JSON"), v, "{case}");
        }
    }

    #[test]
    fn writer_escapes_control_characters() {
        let v = Json::String("a\u{1}b".into());
        let mut s = String::new();
        v.write_json(&mut s);
        assert_eq!(s, r#""a\u0001b""#);
        assert_eq!(parse(&s).unwrap(), v);
        // Display goes through the same encoder.
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn writer_maps_non_finite_numbers_to_null() {
        let mut s = String::new();
        Json::Number(f64::INFINITY).write_json(&mut s);
        assert_eq!(s, "null");
    }

    #[test]
    fn validates_event_lines() {
        validate_telemetry_line(r#"{"kind":"counter","name":"x","t":0.5,"delta":2}"#)
            .expect("valid counter");
        validate_telemetry_line(r#"{"kind":"span_open","name":"epoch","t":0.0}"#)
            .expect("valid span open");
        assert!(validate_telemetry_line(r#"{"kind":"counter","name":"x","t":0.5}"#).is_err());
        assert!(validate_telemetry_line(r#"{"kind":"bogus","name":"x","t":0.5}"#).is_err());
        assert!(validate_telemetry_line(r#"{"name":"x","t":0.5}"#).is_err());
        assert!(
            validate_telemetry_line(r#"{"kind":"gauge","name":"x","t":-1,"value":1}"#).is_err()
        );
    }

    #[test]
    fn validates_heartbeat_and_registry_snapshot_lines() {
        validate_telemetry_line(
            r#"{"kind":"heartbeat","name":"train","t":1.0,"epoch":4,"eps":88.5}"#,
        )
        .expect("valid heartbeat");
        validate_telemetry_line(
            r#"{"kind":"registry_snapshot","name":"metrics_exporter","t":2.0,"counters":5,"gauges":3,"histograms":2}"#,
        )
        .expect("valid snapshot");
        // Missing payload fields.
        assert!(validate_telemetry_line(
            r#"{"kind":"heartbeat","name":"train","t":1.0,"epoch":4}"#
        )
        .is_err());
        assert!(validate_telemetry_line(
            r#"{"kind":"registry_snapshot","name":"m","t":2.0,"counters":5,"gauges":3}"#
        )
        .is_err());
        // Integer fields reject fractional or negative values.
        assert!(validate_telemetry_line(
            r#"{"kind":"heartbeat","name":"train","t":1.0,"epoch":4.5,"eps":1.0}"#
        )
        .is_err());
        assert!(validate_telemetry_line(
            r#"{"kind":"registry_snapshot","name":"m","t":2.0,"counters":-1,"gauges":0,"histograms":0}"#
        )
        .is_err());
    }

    #[test]
    fn validates_trace_event_lines_and_rejects_zero_trace_ids() {
        validate_telemetry_line(
            r#"{"kind":"trace_promoted","name":"serve.trace","t":0.5,"trace":"00000000000000ff","reason":"slow","spans":5}"#,
        )
        .expect("valid trace_promoted");
        validate_telemetry_line(
            r#"{"kind":"flight_record","name":"queue","t":0.5,"trace":"00000000000000ff","span":"0000000000000001","parent":"0000000000000000","status":"ok","shard":1,"batch_seq":3,"generation":2,"start_ns":10,"end_ns":20}"#,
        )
        .expect("valid flight_record");
        // Trace id 0 is reserved (= unsampled): reject on both kinds.
        assert!(validate_telemetry_line(
            r#"{"kind":"trace_promoted","name":"serve.trace","t":0.5,"trace":"0000000000000000","reason":"slow","spans":5}"#,
        )
        .is_err());
        assert!(validate_telemetry_line(
            r#"{"kind":"flight_record","name":"queue","t":0.5,"trace":"0000000000000000","span":"0000000000000001","parent":"0000000000000000","status":"ok","shard":1,"batch_seq":3,"generation":2,"start_ns":10,"end_ns":20}"#,
        )
        .is_err());
        // Span id 0 is equally invalid; parent 0 (root) is fine.
        assert!(validate_telemetry_line(
            r#"{"kind":"flight_record","name":"queue","t":0.5,"trace":"00000000000000ff","span":"0000000000000000","parent":"0000000000000000","status":"ok","shard":1,"batch_seq":3,"generation":2,"start_ns":10,"end_ns":20}"#,
        )
        .is_err());
        // Non-hex trace id, missing reason, unknown status.
        assert!(validate_telemetry_line(
            r#"{"kind":"trace_promoted","name":"serve.trace","t":0.5,"trace":"zz","reason":"slow","spans":5}"#,
        )
        .is_err());
        assert!(validate_telemetry_line(
            r#"{"kind":"trace_promoted","name":"serve.trace","t":0.5,"trace":"00000000000000ff","spans":5}"#,
        )
        .is_err());
        assert!(validate_telemetry_line(
            r#"{"kind":"flight_record","name":"queue","t":0.5,"trace":"00000000000000ff","span":"0000000000000001","parent":"0000000000000000","status":"exploded","shard":1,"batch_seq":3,"generation":2,"start_ns":10,"end_ns":20}"#,
        )
        .is_err());
    }

    #[test]
    fn every_event_kind_round_trips_through_the_validator() {
        use crate::Event;
        let events = [
            Event::SpanOpen { name: "s", t: 0.0 },
            Event::SpanClose {
                name: "s",
                t: 1.0,
                dur: 1.0,
            },
            Event::Counter {
                name: "c",
                t: 1.5,
                delta: 7,
            },
            Event::Gauge {
                name: "g",
                t: 2.0,
                value: -0.25,
            },
            Event::Histogram {
                name: "h",
                t: 2.5,
                value: 1e9,
            },
        ];
        for e in &events {
            let mut line = String::new();
            e.write_json(&mut line);
            let v = validate_telemetry_line(&line).expect("event encodes to valid line");
            assert_eq!(v.get("kind").and_then(Json::as_str), Some(e.kind()));
            assert_eq!(v.get("name").and_then(Json::as_str), Some(e.name()));
        }
    }
}
