//! Typed errors for telemetry I/O and the metrics exposition endpoint.
//!
//! These used to be raw `std::io::Error`s (or worse, silently swallowed);
//! they now carry the path/address context and convert into the workspace
//! `schedinspector::Error`.

use std::path::PathBuf;

/// An observability-layer failure.
#[derive(Debug)]
pub enum ObsError {
    /// Creating or writing a telemetry JSONL sidecar failed.
    Sidecar {
        /// Sidecar file path.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The metrics exposition endpoint could not bind its listen address.
    Bind {
        /// The requested `--metrics-addr`.
        addr: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Sidecar { path, source } => {
                write!(f, "telemetry sidecar {}: {source}", path.display())
            }
            ObsError::Bind { addr, source } => {
                write!(f, "metrics endpoint failed to bind {addr}: {source}")
            }
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsError::Sidecar { source, .. } | ObsError::Bind { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_path_or_addr() {
        let e = ObsError::Sidecar {
            path: PathBuf::from("/tmp/run.telemetry.jsonl"),
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        };
        let msg = e.to_string();
        assert!(msg.contains("/tmp/run.telemetry.jsonl") && msg.contains("denied"));

        let e = ObsError::Bind {
            addr: "127.0.0.1:9".into(),
            source: std::io::Error::new(std::io::ErrorKind::AddrInUse, "in use"),
        };
        assert!(e.to_string().contains("127.0.0.1:9"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
