//! The telemetry event model and its JSONL encoding.
//!
//! Events are small `Copy`-ish values built on the stack: names are
//! `&'static str` so constructing and recording an event never allocates,
//! which is what lets an *enabled* [`Telemetry`](crate::Telemetry) handle
//! with a [`NullSink`](crate::NullSink) stay allocation-free in the
//! simulator's hot loop.

use std::fmt::Write as _;

/// One telemetry event. Timestamps `t` are seconds since the owning
/// [`Telemetry`](crate::Telemetry) handle was created (monotonic clock).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span (timed region) was entered.
    SpanOpen {
        /// Span name, e.g. `"ppo_update"`.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
    },
    /// A span was exited.
    SpanClose {
        /// Span name (matches the corresponding [`Event::SpanOpen`]).
        name: &'static str,
        /// Seconds since handle creation, at close time.
        t: f64,
        /// Span duration in seconds.
        dur: f64,
    },
    /// A monotonically accumulating count (events, rejections, cache hits).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// Amount added to the counter.
        delta: u64,
    },
    /// A point-in-time measurement (utilization, KL, hit rate).
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// Observed value.
        value: f64,
    },
    /// One sample of a distribution (per-minibatch loss, per-point queue
    /// depth). Sinks may aggregate these into histograms.
    Histogram {
        /// Distribution name.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// Sampled value.
        value: f64,
    },
    /// A trainer liveness beacon, emitted once per epoch so dashboards and
    /// `schedinspector report` can track progress without replaying every
    /// counter.
    Heartbeat {
        /// Heartbeat source, e.g. `"train"` or `"selector"`.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// Epoch index just completed.
        epoch: u64,
        /// Episodes per second over that epoch.
        eps: f64,
    },
    /// A periodic summary of the live metrics registry, emitted by the
    /// `/metrics` exporter thread on each scrape so sidecars record that
    /// (and how much) the registry was being observed.
    RegistrySnapshot {
        /// Snapshot source, e.g. `"metrics_exporter"`.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// Registered counter families at snapshot time.
        counters: u64,
        /// Registered gauge families at snapshot time.
        gauges: u64,
        /// Registered histogram families at snapshot time.
        histograms: u64,
    },
    /// A trace was promoted out of the flight recorder by tail-based
    /// sampling (slow, error, or swap-coincident). The promoted spans
    /// follow as [`Event::FlightRecord`] lines sharing the trace id.
    TracePromoted {
        /// Promotion source, e.g. `"serve.trace"`.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// The promoted trace id (never 0; 0 is reserved = unsampled).
        trace: u64,
        /// Why the trace was kept: `"slow"`, `"error"`, or `"swap"`.
        reason: &'static str,
        /// Spans collected from the flight recorder for this trace.
        spans: u64,
    },
    /// One span collected from the flight recorder — ids are encoded as
    /// 16-hex-digit strings so 64-bit values survive JSON readers that
    /// store numbers as `f64`.
    FlightRecord {
        /// Span kind (`"request"`, `"queue"`, `"batch"`, `"forward"`,
        /// `"write"`, `"dropped"`).
        name: &'static str,
        /// Seconds since handle creation, at promotion time.
        t: f64,
        /// Trace id (never 0).
        trace: u64,
        /// This span's id.
        span: u64,
        /// Parent span id (0 = root).
        parent: u64,
        /// Span outcome (`"ok"` or a drop reason).
        status: &'static str,
        /// Shard that handled the request.
        shard: u64,
        /// Batch sequence linking spans that shared a batch (0 = none).
        batch_seq: u64,
        /// Model generation that served (or would have served) it.
        generation: u64,
        /// Span start, clock ns.
        start_ns: u64,
        /// Span end, clock ns.
        end_ns: u64,
    },
}

impl Event {
    /// The event's name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SpanOpen { name, .. }
            | Event::SpanClose { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. }
            | Event::Histogram { name, .. }
            | Event::Heartbeat { name, .. }
            | Event::RegistrySnapshot { name, .. }
            | Event::TracePromoted { name, .. }
            | Event::FlightRecord { name, .. } => name,
        }
    }

    /// Seconds since handle creation.
    pub fn t(&self) -> f64 {
        match self {
            Event::SpanOpen { t, .. }
            | Event::SpanClose { t, .. }
            | Event::Counter { t, .. }
            | Event::Gauge { t, .. }
            | Event::Histogram { t, .. }
            | Event::Heartbeat { t, .. }
            | Event::RegistrySnapshot { t, .. }
            | Event::TracePromoted { t, .. }
            | Event::FlightRecord { t, .. } => *t,
        }
    }

    /// The schema's `kind` discriminator, as written to JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SpanOpen { .. } => "span_open",
            Event::SpanClose { .. } => "span_close",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Histogram { .. } => "histogram",
            Event::Heartbeat { .. } => "heartbeat",
            Event::RegistrySnapshot { .. } => "registry_snapshot",
            Event::TracePromoted { .. } => "trace_promoted",
            Event::FlightRecord { .. } => "flight_record",
        }
    }

    /// Append this event as one JSON object (no trailing newline) to `out`.
    ///
    /// The encoding is the documented sidecar format: every line is an
    /// object with `kind`, `name`, and `t`, plus a kind-specific payload
    /// field (`dur`, `delta`, or `value`). Names are static identifiers
    /// (no quotes/backslashes), so no string escaping is needed.
    pub fn write_json(&self, out: &mut String) {
        let _ = match self {
            Event::SpanOpen { name, t } => {
                write!(out, r#"{{"kind":"span_open","name":"{name}","t":{t:.9}}}"#)
            }
            Event::SpanClose { name, t, dur } => write!(
                out,
                r#"{{"kind":"span_close","name":"{name}","t":{t:.9},"dur":{dur:.9}}}"#
            ),
            Event::Counter { name, t, delta } => write!(
                out,
                r#"{{"kind":"counter","name":"{name}","t":{t:.9},"delta":{delta}}}"#
            ),
            Event::Gauge { name, t, value } => write!(
                out,
                r#"{{"kind":"gauge","name":"{name}","t":{t:.9},"value":{}}}"#,
                json_f64(*value)
            ),
            Event::Histogram { name, t, value } => write!(
                out,
                r#"{{"kind":"histogram","name":"{name}","t":{t:.9},"value":{}}}"#,
                json_f64(*value)
            ),
            Event::Heartbeat {
                name,
                t,
                epoch,
                eps,
            } => write!(
                out,
                r#"{{"kind":"heartbeat","name":"{name}","t":{t:.9},"epoch":{epoch},"eps":{}}}"#,
                json_f64(*eps)
            ),
            Event::RegistrySnapshot {
                name,
                t,
                counters,
                gauges,
                histograms,
            } => write!(
                out,
                r#"{{"kind":"registry_snapshot","name":"{name}","t":{t:.9},"counters":{counters},"gauges":{gauges},"histograms":{histograms}}}"#
            ),
            Event::TracePromoted {
                name,
                t,
                trace,
                reason,
                spans,
            } => write!(
                out,
                r#"{{"kind":"trace_promoted","name":"{name}","t":{t:.9},"trace":"{trace:016x}","reason":"{reason}","spans":{spans}}}"#
            ),
            Event::FlightRecord {
                name,
                t,
                trace,
                span,
                parent,
                status,
                shard,
                batch_seq,
                generation,
                start_ns,
                end_ns,
            } => write!(
                out,
                r#"{{"kind":"flight_record","name":"{name}","t":{t:.9},"trace":"{trace:016x}","span":"{span:016x}","parent":"{parent:016x}","status":"{status}","shard":{shard},"batch_seq":{batch_seq},"generation":{generation},"start_ns":{start_ns},"end_ns":{end_ns}}}"#
            ),
        };
    }
}

/// Format an `f64` as a valid JSON number (JSON has no NaN/Infinity; they
/// are mapped to `null` so the line still parses).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_kinds() {
        let events = [
            Event::SpanOpen { name: "a", t: 1.0 },
            Event::SpanClose {
                name: "a",
                t: 2.0,
                dur: 1.0,
            },
            Event::Counter {
                name: "c",
                t: 3.0,
                delta: 5,
            },
            Event::Gauge {
                name: "g",
                t: 4.0,
                value: 0.5,
            },
            Event::Histogram {
                name: "h",
                t: 5.0,
                value: 2.5,
            },
            Event::Heartbeat {
                name: "train",
                t: 6.0,
                epoch: 3,
                eps: 100.0,
            },
            Event::RegistrySnapshot {
                name: "metrics_exporter",
                t: 7.0,
                counters: 4,
                gauges: 2,
                histograms: 1,
            },
        ];
        let kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "span_open",
                "span_close",
                "counter",
                "gauge",
                "histogram",
                "heartbeat",
                "registry_snapshot"
            ]
        );
        assert_eq!(events[5].name(), "train");
        assert_eq!(events[6].t(), 7.0);
        assert_eq!(events[2].name(), "c");
        assert_eq!(events[3].t(), 4.0);
    }

    #[test]
    fn json_encoding_is_one_object_per_event() {
        let mut s = String::new();
        Event::Counter {
            name: "sim.reject",
            t: 0.25,
            delta: 3,
        }
        .write_json(&mut s);
        assert_eq!(
            s,
            r#"{"kind":"counter","name":"sim.reject","t":0.250000000,"delta":3}"#
        );
    }

    #[test]
    fn heartbeat_and_snapshot_encode_with_their_payload_fields() {
        let mut s = String::new();
        Event::Heartbeat {
            name: "train",
            t: 1.5,
            epoch: 9,
            eps: 250.5,
        }
        .write_json(&mut s);
        assert_eq!(
            s,
            r#"{"kind":"heartbeat","name":"train","t":1.500000000,"epoch":9,"eps":250.5}"#
        );
        crate::json::validate_telemetry_line(&s).expect("heartbeat validates");

        s.clear();
        Event::RegistrySnapshot {
            name: "metrics_exporter",
            t: 2.0,
            counters: 3,
            gauges: 1,
            histograms: 2,
        }
        .write_json(&mut s);
        assert!(s.contains(r#""counters":3"#) && s.contains(r#""histograms":2"#));
        crate::json::validate_telemetry_line(&s).expect("snapshot validates");
    }

    #[test]
    fn trace_events_encode_ids_as_hex_strings_and_validate() {
        let mut s = String::new();
        Event::TracePromoted {
            name: "serve.trace",
            t: 0.5,
            trace: 0xff,
            reason: "slow",
            spans: 5,
        }
        .write_json(&mut s);
        assert_eq!(
            s,
            r#"{"kind":"trace_promoted","name":"serve.trace","t":0.500000000,"trace":"00000000000000ff","reason":"slow","spans":5}"#
        );
        crate::json::validate_telemetry_line(&s).expect("trace_promoted validates");

        s.clear();
        Event::FlightRecord {
            name: "forward",
            t: 0.75,
            trace: u64::MAX,
            span: 0x1234,
            parent: 0,
            status: "ok",
            shard: 2,
            batch_seq: 9,
            generation: 4,
            start_ns: 100,
            end_ns: 250,
        }
        .write_json(&mut s);
        assert!(s.contains(r#""trace":"ffffffffffffffff""#), "{s}");
        assert!(s.contains(r#""span":"0000000000001234""#), "{s}");
        assert!(s.contains(r#""parent":"0000000000000000""#), "{s}");
        assert!(s.contains(r#""generation":4"#), "{s}");
        crate::json::validate_telemetry_line(&s).expect("flight_record validates");
    }

    #[test]
    fn non_finite_gauges_encode_as_null() {
        let mut s = String::new();
        Event::Gauge {
            name: "g",
            t: 0.0,
            value: f64::NAN,
        }
        .write_json(&mut s);
        assert!(s.contains(r#""value":null"#));
        crate::json::parse(&s).expect("null-valued gauge still parses");
    }
}
