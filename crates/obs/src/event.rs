//! The telemetry event model and its JSONL encoding.
//!
//! Events are small `Copy`-ish values built on the stack: names are
//! `&'static str` so constructing and recording an event never allocates,
//! which is what lets an *enabled* [`Telemetry`](crate::Telemetry) handle
//! with a [`NullSink`](crate::NullSink) stay allocation-free in the
//! simulator's hot loop.

use std::fmt::Write as _;

/// One telemetry event. Timestamps `t` are seconds since the owning
/// [`Telemetry`](crate::Telemetry) handle was created (monotonic clock).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span (timed region) was entered.
    SpanOpen {
        /// Span name, e.g. `"ppo_update"`.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
    },
    /// A span was exited.
    SpanClose {
        /// Span name (matches the corresponding [`Event::SpanOpen`]).
        name: &'static str,
        /// Seconds since handle creation, at close time.
        t: f64,
        /// Span duration in seconds.
        dur: f64,
    },
    /// A monotonically accumulating count (events, rejections, cache hits).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// Amount added to the counter.
        delta: u64,
    },
    /// A point-in-time measurement (utilization, KL, hit rate).
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// Observed value.
        value: f64,
    },
    /// One sample of a distribution (per-minibatch loss, per-point queue
    /// depth). Sinks may aggregate these into histograms.
    Histogram {
        /// Distribution name.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// Sampled value.
        value: f64,
    },
    /// A trainer liveness beacon, emitted once per epoch so dashboards and
    /// `schedinspector report` can track progress without replaying every
    /// counter.
    Heartbeat {
        /// Heartbeat source, e.g. `"train"` or `"selector"`.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// Epoch index just completed.
        epoch: u64,
        /// Episodes per second over that epoch.
        eps: f64,
    },
    /// A periodic summary of the live metrics registry, emitted by the
    /// `/metrics` exporter thread on each scrape so sidecars record that
    /// (and how much) the registry was being observed.
    RegistrySnapshot {
        /// Snapshot source, e.g. `"metrics_exporter"`.
        name: &'static str,
        /// Seconds since handle creation.
        t: f64,
        /// Registered counter families at snapshot time.
        counters: u64,
        /// Registered gauge families at snapshot time.
        gauges: u64,
        /// Registered histogram families at snapshot time.
        histograms: u64,
    },
}

impl Event {
    /// The event's name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SpanOpen { name, .. }
            | Event::SpanClose { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. }
            | Event::Histogram { name, .. }
            | Event::Heartbeat { name, .. }
            | Event::RegistrySnapshot { name, .. } => name,
        }
    }

    /// Seconds since handle creation.
    pub fn t(&self) -> f64 {
        match self {
            Event::SpanOpen { t, .. }
            | Event::SpanClose { t, .. }
            | Event::Counter { t, .. }
            | Event::Gauge { t, .. }
            | Event::Histogram { t, .. }
            | Event::Heartbeat { t, .. }
            | Event::RegistrySnapshot { t, .. } => *t,
        }
    }

    /// The schema's `kind` discriminator, as written to JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SpanOpen { .. } => "span_open",
            Event::SpanClose { .. } => "span_close",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Histogram { .. } => "histogram",
            Event::Heartbeat { .. } => "heartbeat",
            Event::RegistrySnapshot { .. } => "registry_snapshot",
        }
    }

    /// Append this event as one JSON object (no trailing newline) to `out`.
    ///
    /// The encoding is the documented sidecar format: every line is an
    /// object with `kind`, `name`, and `t`, plus a kind-specific payload
    /// field (`dur`, `delta`, or `value`). Names are static identifiers
    /// (no quotes/backslashes), so no string escaping is needed.
    pub fn write_json(&self, out: &mut String) {
        let _ = match self {
            Event::SpanOpen { name, t } => {
                write!(out, r#"{{"kind":"span_open","name":"{name}","t":{t:.9}}}"#)
            }
            Event::SpanClose { name, t, dur } => write!(
                out,
                r#"{{"kind":"span_close","name":"{name}","t":{t:.9},"dur":{dur:.9}}}"#
            ),
            Event::Counter { name, t, delta } => write!(
                out,
                r#"{{"kind":"counter","name":"{name}","t":{t:.9},"delta":{delta}}}"#
            ),
            Event::Gauge { name, t, value } => write!(
                out,
                r#"{{"kind":"gauge","name":"{name}","t":{t:.9},"value":{}}}"#,
                json_f64(*value)
            ),
            Event::Histogram { name, t, value } => write!(
                out,
                r#"{{"kind":"histogram","name":"{name}","t":{t:.9},"value":{}}}"#,
                json_f64(*value)
            ),
            Event::Heartbeat {
                name,
                t,
                epoch,
                eps,
            } => write!(
                out,
                r#"{{"kind":"heartbeat","name":"{name}","t":{t:.9},"epoch":{epoch},"eps":{}}}"#,
                json_f64(*eps)
            ),
            Event::RegistrySnapshot {
                name,
                t,
                counters,
                gauges,
                histograms,
            } => write!(
                out,
                r#"{{"kind":"registry_snapshot","name":"{name}","t":{t:.9},"counters":{counters},"gauges":{gauges},"histograms":{histograms}}}"#
            ),
        };
    }
}

/// Format an `f64` as a valid JSON number (JSON has no NaN/Infinity; they
/// are mapped to `null` so the line still parses).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_kinds() {
        let events = [
            Event::SpanOpen { name: "a", t: 1.0 },
            Event::SpanClose {
                name: "a",
                t: 2.0,
                dur: 1.0,
            },
            Event::Counter {
                name: "c",
                t: 3.0,
                delta: 5,
            },
            Event::Gauge {
                name: "g",
                t: 4.0,
                value: 0.5,
            },
            Event::Histogram {
                name: "h",
                t: 5.0,
                value: 2.5,
            },
            Event::Heartbeat {
                name: "train",
                t: 6.0,
                epoch: 3,
                eps: 100.0,
            },
            Event::RegistrySnapshot {
                name: "metrics_exporter",
                t: 7.0,
                counters: 4,
                gauges: 2,
                histograms: 1,
            },
        ];
        let kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "span_open",
                "span_close",
                "counter",
                "gauge",
                "histogram",
                "heartbeat",
                "registry_snapshot"
            ]
        );
        assert_eq!(events[5].name(), "train");
        assert_eq!(events[6].t(), 7.0);
        assert_eq!(events[2].name(), "c");
        assert_eq!(events[3].t(), 4.0);
    }

    #[test]
    fn json_encoding_is_one_object_per_event() {
        let mut s = String::new();
        Event::Counter {
            name: "sim.reject",
            t: 0.25,
            delta: 3,
        }
        .write_json(&mut s);
        assert_eq!(
            s,
            r#"{"kind":"counter","name":"sim.reject","t":0.250000000,"delta":3}"#
        );
    }

    #[test]
    fn heartbeat_and_snapshot_encode_with_their_payload_fields() {
        let mut s = String::new();
        Event::Heartbeat {
            name: "train",
            t: 1.5,
            epoch: 9,
            eps: 250.5,
        }
        .write_json(&mut s);
        assert_eq!(
            s,
            r#"{"kind":"heartbeat","name":"train","t":1.500000000,"epoch":9,"eps":250.5}"#
        );
        crate::json::validate_telemetry_line(&s).expect("heartbeat validates");

        s.clear();
        Event::RegistrySnapshot {
            name: "metrics_exporter",
            t: 2.0,
            counters: 3,
            gauges: 1,
            histograms: 2,
        }
        .write_json(&mut s);
        assert!(s.contains(r#""counters":3"#) && s.contains(r#""histograms":2"#));
        crate::json::validate_telemetry_line(&s).expect("snapshot validates");
    }

    #[test]
    fn non_finite_gauges_encode_as_null() {
        let mut s = String::new();
        Event::Gauge {
            name: "g",
            t: 0.0,
            value: f64::NAN,
        }
        .write_json(&mut s);
        assert!(s.contains(r#""value":null"#));
        crate::json::parse(&s).expect("null-valued gauge still parses");
    }
}
