//! Offline analysis of telemetry JSONL sidecars: the engine behind
//! `schedinspector report`.
//!
//! A multi-hour training run leaves a 100k-line sidecar; this module turns
//! it into the three things the paper's §4 evaluation reasons about:
//!
//! 1. **per-epoch summaries** — episodes, throughput, mean reward,
//!    improvement, KL, rejection ratio, one row per `epoch` span;
//! 2. **span wall-time aggregation** — a flamegraph-style tree of
//!    total/self time per span path, tolerant of unpaired opens/closes
//!    (truncated runs, crashed workers);
//! 3. **throughput regression checks** — measured rollout/serve
//!    throughput compared against the committed `BENCH_rollout.json` /
//!    `BENCH_serve.json` baselines with a configurable tolerance.
//!
//! Parse errors name the offending file and line number.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::json::{self, Json};

/// One parsed sidecar event (owned names, unlike the recording-side
/// [`Event`](crate::Event) whose names are `&'static str`).
#[derive(Debug, Clone, PartialEq)]
pub enum ReportEvent {
    /// `span_open`
    SpanOpen {
        /// Span name.
        name: String,
        /// Seconds since run start.
        t: f64,
    },
    /// `span_close`
    SpanClose {
        /// Span name.
        name: String,
        /// Seconds since run start.
        t: f64,
        /// Span duration in seconds.
        dur: f64,
    },
    /// `counter`
    Counter {
        /// Counter name.
        name: String,
        /// Seconds since run start.
        t: f64,
        /// Amount added.
        delta: u64,
    },
    /// `gauge`
    Gauge {
        /// Gauge name.
        name: String,
        /// Seconds since run start.
        t: f64,
        /// Observed value (NaN when the sidecar recorded `null`).
        value: f64,
    },
    /// `histogram`
    Histogram {
        /// Distribution name.
        name: String,
        /// Seconds since run start.
        t: f64,
        /// Sampled value (NaN when the sidecar recorded `null`).
        value: f64,
    },
    /// `heartbeat`
    Heartbeat {
        /// Source name (`train`, `selector`).
        name: String,
        /// Seconds since run start.
        t: f64,
        /// Epoch index just completed.
        epoch: u64,
        /// Episodes per second over that epoch.
        eps: f64,
    },
    /// `registry_snapshot` (payload not used by the analyzer).
    RegistrySnapshot {
        /// Source name.
        name: String,
        /// Seconds since run start.
        t: f64,
    },
    /// `trace_promoted` — a tail-sampled trace was kept.
    TracePromoted {
        /// Promotion source name.
        name: String,
        /// Seconds since run start.
        t: f64,
        /// Promoted trace id.
        trace: u64,
        /// Promotion reason (`slow` / `error` / `swap`).
        reason: String,
        /// Spans collected for the trace.
        spans: u64,
    },
    /// `flight_record` — one promoted span (payload beyond the trace id
    /// is not aggregated here; `schedinspector trace` reconstructs it).
    FlightRecord {
        /// Span kind name.
        name: String,
        /// Seconds since run start.
        t: f64,
        /// Trace id the span belongs to.
        trace: u64,
    },
}

impl ReportEvent {
    fn t(&self) -> f64 {
        match self {
            ReportEvent::SpanOpen { t, .. }
            | ReportEvent::SpanClose { t, .. }
            | ReportEvent::Counter { t, .. }
            | ReportEvent::Gauge { t, .. }
            | ReportEvent::Histogram { t, .. }
            | ReportEvent::Heartbeat { t, .. }
            | ReportEvent::RegistrySnapshot { t, .. }
            | ReportEvent::TracePromoted { t, .. }
            | ReportEvent::FlightRecord { t, .. } => *t,
        }
    }
}

fn field_f64(v: &Json, field: &str) -> f64 {
    match v.get(field) {
        Some(Json::Number(n)) => *n,
        _ => f64::NAN, // non-finite values encode as null
    }
}

fn field_u64(v: &Json, field: &str) -> u64 {
    v.get(field).and_then(Json::as_f64).unwrap_or(0.0) as u64
}

/// Parse one sidecar line into a [`ReportEvent`] (schema-validating it
/// first).
pub fn parse_line(line: &str) -> Result<ReportEvent, String> {
    let v = json::validate_telemetry_line(line)?;
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    let t = field_f64(&v, "t");
    Ok(match kind.as_str() {
        "span_open" => ReportEvent::SpanOpen { name, t },
        "span_close" => ReportEvent::SpanClose {
            name,
            t,
            dur: field_f64(&v, "dur"),
        },
        "counter" => ReportEvent::Counter {
            name,
            t,
            delta: field_u64(&v, "delta"),
        },
        "gauge" => ReportEvent::Gauge {
            name,
            t,
            value: field_f64(&v, "value"),
        },
        "histogram" => ReportEvent::Histogram {
            name,
            t,
            value: field_f64(&v, "value"),
        },
        "heartbeat" => ReportEvent::Heartbeat {
            name,
            t,
            epoch: field_u64(&v, "epoch"),
            eps: field_f64(&v, "eps"),
        },
        "registry_snapshot" => ReportEvent::RegistrySnapshot { name, t },
        // Ids are validated 16-hex strings (validate_telemetry_line).
        "trace_promoted" => ReportEvent::TracePromoted {
            name,
            t,
            trace: field_hex(&v, "trace"),
            reason: v
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            spans: field_u64(&v, "spans"),
        },
        "flight_record" => ReportEvent::FlightRecord {
            name,
            t,
            trace: field_hex(&v, "trace"),
        },
        other => return Err(format!("unknown event kind {other:?}")),
    })
}

fn field_hex(v: &Json, field: &str) -> u64 {
    v.get(field)
        .and_then(Json::as_str)
        .and_then(crate::trace::parse_hex16)
        .unwrap_or(0)
}

/// Parse a whole sidecar file. Errors are `"path:line: message"`.
pub fn parse_sidecar(path: &Path) -> Result<Vec<ReportEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?);
    }
    Ok(events)
}

/// Parse a sidecar file, skipping malformed lines instead of failing.
///
/// A crashed or killed run leaves a sidecar whose final line is torn
/// mid-JSON; a newer writer may emit event kinds this analyzer does not
/// know. Neither should make the whole report unreadable. Every line that
/// fails to parse becomes a `"path:line: message"` warning; only an
/// unreadable *file* is an error.
pub fn parse_sidecar_lenient(path: &Path) -> Result<(Vec<ReportEvent>, Vec<String>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut events = Vec::new();
    let mut malformed = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(event) => events.push(event),
            Err(e) => malformed.push(format!("{}:{}: {e}", path.display(), i + 1)),
        }
    }
    Ok((events, malformed))
}

/// One node of the aggregated span tree. The same span name reached
/// through different parents aggregates separately (it is a *path* tree).
#[derive(Debug, Default, Clone)]
pub struct SpanNode {
    /// Number of closes recorded at this path.
    pub count: u64,
    /// Total wall seconds across those closes.
    pub total: f64,
    /// Children, by span name.
    pub children: BTreeMap<String, SpanNode>,
}

impl SpanNode {
    /// Wall time spent at this node minus time attributed to children
    /// (clamped at 0: overlapping/unpaired spans can over-count children).
    pub fn self_time(&self) -> f64 {
        let child_total: f64 = self.children.values().map(|c| c.total).sum();
        (self.total - child_total).max(0.0)
    }

    fn at_path(&mut self, path: &[String]) -> &mut SpanNode {
        let mut node = self;
        for name in path {
            node = node.children.entry(name.clone()).or_default();
        }
        node
    }
}

/// Replay span events into an aggregated path tree.
///
/// Malformed streams are tolerated, not fatal: a close with no matching
/// open is skipped with a warning; closes that skip over still-open inner
/// spans implicitly close them (attributing time up to the closing
/// event); spans still open at end-of-stream are closed at the last
/// event's timestamp, with a warning each.
pub fn aggregate_spans(events: &[ReportEvent]) -> (SpanNode, Vec<String>) {
    let mut root = SpanNode::default();
    let mut warnings = Vec::new();
    // Stack of (name, open_t).
    let mut stack: Vec<(String, f64)> = Vec::new();
    let last_t = events.last().map_or(0.0, ReportEvent::t);

    let close_top = |root: &mut SpanNode, stack: &mut Vec<(String, f64)>, dur: f64| {
        let path: Vec<String> = stack.iter().map(|(n, _)| n.clone()).collect();
        let node = root.at_path(&path);
        node.count += 1;
        node.total += dur.max(0.0);
        stack.pop();
    };

    for event in events {
        match event {
            ReportEvent::SpanOpen { name, t } => stack.push((name.clone(), *t)),
            ReportEvent::SpanClose { name, t, dur } => {
                match stack.iter().rposition(|(n, _)| n == name) {
                    None => {
                        warnings.push(format!(
                            "span_close {name:?} at t={t:.3} with no matching open; skipped"
                        ));
                    }
                    Some(pos) => {
                        // Implicitly close anything opened inside the span
                        // being closed (crashed worker, truncated stream).
                        while stack.len() > pos + 1 {
                            let (inner, open_t) = stack.last().cloned().expect("non-empty");
                            warnings.push(format!(
                                "span {inner:?} implicitly closed by span_close {name:?} at t={t:.3}"
                            ));
                            close_top(&mut root, &mut stack, t - open_t);
                        }
                        close_top(&mut root, &mut stack, *dur);
                    }
                }
            }
            _ => {}
        }
    }
    while let Some((name, open_t)) = stack.last().cloned() {
        warnings.push(format!(
            "span {name:?} opened at t={open_t:.3} never closed; closed at end of stream"
        ));
        close_top(&mut root, &mut stack, last_t - open_t);
    }
    (root, warnings)
}

/// One row of the per-epoch summary table.
#[derive(Debug, Clone)]
pub struct EpochSummary {
    /// Epoch index (heartbeat-provided, else sequential).
    pub index: u64,
    /// Epoch duration in seconds (the `epoch` span's `dur`).
    pub dur: f64,
    /// Episodes completed this epoch (`train.episodes` deltas).
    pub episodes: u64,
    /// Episodes per second from the epoch's heartbeat, if any.
    pub eps: Option<f64>,
    /// Last value of each gauge recorded during the epoch.
    pub gauges: BTreeMap<String, f64>,
    /// Sum of each counter recorded during the epoch.
    pub counters: BTreeMap<String, u64>,
}

/// Whole-sidecar analysis result.
#[derive(Debug, Clone)]
pub struct SidecarReport {
    /// Per-epoch rows, in order.
    pub epochs: Vec<EpochSummary>,
    /// Aggregated span path tree.
    pub spans: SpanNode,
    /// Sum of every counter over the whole run.
    pub counter_totals: BTreeMap<String, u64>,
    /// Heartbeat episodes-per-second samples, in order, per source.
    pub heartbeat_eps: BTreeMap<String, Vec<f64>>,
    /// Finite histogram samples per distribution name, in order (e.g.
    /// `serve.e2e_s` end-to-end decision latencies in seconds).
    pub histogram_samples: BTreeMap<String, Vec<f64>>,
    /// Promoted traces seen in the sidecar, as `(trace_id, reason)` in
    /// order of promotion.
    pub promoted_traces: Vec<(u64, String)>,
    /// Total events analyzed.
    pub events: usize,
    /// Timestamp of the last event (run wall time in seconds).
    pub wall: f64,
    /// Sidecar lines that failed to parse and were skipped (only nonzero
    /// for lenient analysis; each also appears in `warnings`). A report
    /// consumer should treat a nonzero count as a degraded — not clean —
    /// run.
    pub malformed_lines: usize,
    /// Non-fatal anomalies (unpaired spans, skipped malformed lines, …).
    pub warnings: Vec<String>,
}

/// Analyze a parsed event stream.
pub fn analyze(events: &[ReportEvent]) -> SidecarReport {
    let (spans, mut warnings) = aggregate_spans(events);
    let mut epochs = Vec::new();
    let mut promoted_traces = Vec::new();
    let mut counter_totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut heartbeat_eps: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut histogram_samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();

    // Accumulators for the epoch currently being filled: everything since
    // the last `epoch` span closed.
    let mut cur_gauges: BTreeMap<String, f64> = BTreeMap::new();
    let mut cur_counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut cur_eps: Option<f64> = None;
    let mut cur_index: Option<u64> = None;

    for event in events {
        match event {
            ReportEvent::Counter { name, delta, .. } => {
                *counter_totals.entry(name.clone()).or_insert(0) += delta;
                *cur_counters.entry(name.clone()).or_insert(0) += delta;
            }
            ReportEvent::Gauge { name, value, .. } => {
                cur_gauges.insert(name.clone(), *value);
            }
            ReportEvent::Histogram { name, value, .. } if value.is_finite() => {
                histogram_samples
                    .entry(name.clone())
                    .or_default()
                    .push(*value);
            }
            ReportEvent::Heartbeat {
                name, epoch, eps, ..
            } => {
                heartbeat_eps.entry(name.clone()).or_default().push(*eps);
                cur_eps = Some(*eps);
                cur_index = Some(*epoch);
            }
            ReportEvent::TracePromoted { trace, reason, .. } => {
                promoted_traces.push((*trace, reason.clone()));
            }
            ReportEvent::SpanClose { name, dur, .. } if name == "epoch" => {
                epochs.push(EpochSummary {
                    index: cur_index.unwrap_or(epochs.len() as u64),
                    dur: *dur,
                    episodes: cur_counters.get("train.episodes").copied().unwrap_or(0),
                    eps: cur_eps.take(),
                    gauges: std::mem::take(&mut cur_gauges),
                    counters: std::mem::take(&mut cur_counters),
                });
                cur_index = None;
            }
            _ => {}
        }
    }

    // A flight recorder that wrapped lost spans: the trace it was sized
    // for is gone. Make that loud, not a silent counter.
    if let Some(&overwrites) = counter_totals.get("obs.trace.ring_overwrites") {
        if overwrites > 0 {
            warnings.push(format!(
                "flight recorder overwrote {overwrites} span record(s); \
                 ring too small for the traced window"
            ));
        }
    }

    SidecarReport {
        epochs,
        spans,
        counter_totals,
        heartbeat_eps,
        histogram_samples,
        promoted_traces,
        events: events.len(),
        wall: events.last().map_or(0.0, ReportEvent::t),
        malformed_lines: 0,
        warnings,
    }
}

/// Parse and analyze a sidecar file. Errors name the file and line.
pub fn analyze_file(path: &Path) -> Result<SidecarReport, String> {
    Ok(analyze(&parse_sidecar(path)?))
}

/// Parse and analyze a sidecar file leniently: malformed lines are
/// skipped, counted in [`SidecarReport::malformed_lines`], and reported as
/// warnings. Only an unreadable file is an error.
pub fn analyze_file_lenient(path: &Path) -> Result<SidecarReport, String> {
    let (events, malformed) = parse_sidecar_lenient(path)?;
    let mut report = analyze(&events);
    report.malformed_lines = malformed.len();
    // Malformed-line warnings go first: they explain any oddities the
    // span-pairing warnings that follow might show.
    let mut warnings = malformed;
    warnings.append(&mut report.warnings);
    report.warnings = warnings;
    Ok(report)
}

/// Empirical quantile of unsorted samples (None when empty). Uses the
/// nearest-rank definition: the smallest sample with cumulative frequency
/// >= q.
fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    Some(sorted[rank])
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.3}"),
        _ => "-".to_string(),
    }
}

impl SidecarReport {
    /// Mean heartbeat episodes/s across all sources (None without
    /// heartbeats).
    pub fn mean_heartbeat_eps(&self) -> Option<f64> {
        let all: Vec<f64> = self
            .heartbeat_eps
            .values()
            .flatten()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if all.is_empty() {
            None
        } else {
            Some(all.iter().sum::<f64>() / all.len() as f64)
        }
    }

    /// Measured rollout throughput: heartbeat eps when available, else
    /// total `train.episodes` over total `rollout` span time.
    pub fn rollout_eps(&self) -> Option<f64> {
        if let Some(eps) = self.mean_heartbeat_eps() {
            return Some(eps);
        }
        let episodes = *self.counter_totals.get("train.episodes")? as f64;
        let rollout = self
            .spans
            .children
            .get("epoch")
            .and_then(|e| e.children.get("rollout"))
            .or_else(|| self.spans.children.get("rollout"))?;
        (rollout.total > 0.0).then(|| episodes / rollout.total)
    }

    /// Measured serve throughput: `serve.requests` over run wall time.
    pub fn serve_qps(&self) -> Option<f64> {
        let requests = *self.counter_totals.get("serve.requests")? as f64;
        (self.wall > 0.0).then(|| requests / self.wall)
    }

    /// Measured p99 end-to-end decision latency in microseconds, from the
    /// per-request `serve.e2e_s` histogram samples the engine streams when
    /// telemetry is enabled (None without samples).
    pub fn serve_p99_us(&self) -> Option<f64> {
        let samples = self.histogram_samples.get("serve.e2e_s")?;
        quantile(samples, 0.99).map(|s| s * 1e6)
    }

    /// Render the human-readable report (summary, per-epoch table, span
    /// tree, warnings).
    pub fn render(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "{} events over {:.3}s wall; {} epochs",
            self.events,
            self.wall,
            self.epochs.len()
        );
        if self.malformed_lines > 0 {
            let _ = writeln!(
                out,
                "DEGRADED: {} malformed sidecar line(s) skipped",
                self.malformed_lines
            );
        }
        if !self.counter_totals.is_empty() {
            let _ = writeln!(out, "\ncounter totals");
            for (name, total) in &self.counter_totals {
                let _ = writeln!(out, "  {name:<32} {total:>12}");
            }
        }
        // Observability-of-the-observability: sidecar drops and flight
        // recorder health, surfaced whenever the run recorded them.
        let health_names = [
            "obs.sink.dropped_events",
            "obs.trace.recorded",
            "obs.trace.promoted",
            "obs.trace.ring_overwrites",
        ];
        if health_names
            .iter()
            .any(|n| self.counter_totals.contains_key(*n))
            || !self.promoted_traces.is_empty()
        {
            let _ = writeln!(out, "\ntelemetry health");
            for name in health_names {
                if let Some(total) = self.counter_totals.get(name) {
                    let _ = writeln!(out, "  {name:<32} {total:>12}");
                }
            }
            if !self.promoted_traces.is_empty() {
                let _ = writeln!(
                    out,
                    "  promoted traces in sidecar: {}",
                    self.promoted_traces.len()
                );
                for (trace, reason) in self.promoted_traces.iter().take(10) {
                    let _ = writeln!(out, "    trace {trace:016x} ({reason})");
                }
                if self.promoted_traces.len() > 10 {
                    let _ = writeln!(out, "    … {} more", self.promoted_traces.len() - 10);
                }
            }
            let overwrites = self
                .counter_totals
                .get("obs.trace.ring_overwrites")
                .copied()
                .unwrap_or(0);
            if overwrites > 0 {
                let _ = writeln!(
                    out,
                    "  WARNING: flight recorder overwrote {overwrites} span record(s); \
                     traces in the overwritten window are incomplete"
                );
            }
        }
        if !self.epochs.is_empty() {
            let _ = writeln!(
                out,
                "\n{:>5} {:>9} {:>9} {:>10} {:>12} {:>9} {:>8} {:>8}",
                "epoch", "dur_s", "episodes", "eps", "mean_reward", "improve%", "kl", "reject%"
            );
            for e in &self.epochs {
                let _ = writeln!(
                    out,
                    "{:>5} {:>9.3} {:>9} {:>10} {:>12} {:>9} {:>8} {:>8}",
                    e.index,
                    e.dur,
                    e.episodes,
                    fmt_opt(e.eps),
                    fmt_opt(e.gauges.get("epoch.mean_reward").copied()),
                    fmt_opt(e.gauges.get("epoch.improvement_pct").copied()),
                    fmt_opt(e.gauges.get("ppo.kl").copied()),
                    fmt_opt(e.gauges.get("epoch.rejection_ratio").copied()),
                );
            }
        }
        let _ = writeln!(
            out,
            "\nspan wall-time breakdown\n  {:<34} {:>8} {:>12} {:>12}",
            "span", "count", "total_s", "self_s"
        );
        fn walk(out: &mut String, name: &str, node: &SpanNode, depth: usize) {
            if depth > 0 {
                let label = format!("{}{}", "  ".repeat(depth - 1), name);
                let _ = writeln!(
                    out,
                    "  {label:<34} {:>8} {:>12.4} {:>12.4}",
                    node.count,
                    node.total,
                    node.self_time()
                );
            }
            for (child_name, child) in &node.children {
                walk(out, child_name, child, depth + 1);
            }
        }
        walk(out, "", &self.spans, 0);
        if !self.warnings.is_empty() {
            let _ = writeln!(out, "\nwarnings ({})", self.warnings.len());
            for w in self.warnings.iter().take(20) {
                let _ = writeln!(out, "  {w}");
            }
            if self.warnings.len() > 20 {
                let _ = writeln!(out, "  … {} more", self.warnings.len() - 20);
            }
        }
    }
}

/// One throughput comparison against a committed benchmark baseline.
#[derive(Debug, Clone)]
pub struct ThroughputCheck {
    /// What was compared (`rollout`, `serve`).
    pub name: &'static str,
    /// Throughput measured from the sidecar.
    pub measured: f64,
    /// Baseline throughput from the BENCH file.
    pub baseline: f64,
    /// Allowed fractional shortfall before failing (0.5 = may run at half
    /// the baseline).
    pub tolerance: f64,
}

impl ThroughputCheck {
    /// Whether the measurement regressed beyond tolerance.
    pub fn regressed(&self) -> bool {
        self.measured < self.baseline * (1.0 - self.tolerance)
    }

    /// `measured / baseline` (0 when the baseline is 0).
    pub fn ratio(&self) -> f64 {
        if self.baseline > 0.0 {
            self.measured / self.baseline
        } else {
            0.0
        }
    }
}

/// Load a BENCH_*.json file. Errors name the file.
pub fn load_bench(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    json::parse(text.trim()).map_err(|e| format!("{}: {e}", path.display()))
}

/// Best committed rollout throughput: max `optimized` episodes/s across
/// worker configurations in `BENCH_rollout.json`.
pub fn rollout_baseline(bench: &Json) -> Option<f64> {
    bench
        .get("episodes_per_sec")?
        .as_array()?
        .iter()
        .filter_map(|row| row.get("optimized").and_then(Json::as_f64))
        .fold(None, |best, v| Some(best.map_or(v, |b: f64| b.max(v))))
}

/// Committed serve throughput: `open_loop.achieved_qps` in
/// `BENCH_serve.json`.
pub fn serve_baseline(bench: &Json) -> Option<f64> {
    bench.get("open_loop")?.get("achieved_qps")?.as_f64()
}

/// Best committed distributed-training throughput: max `eps` across the
/// worker-count scaling rows in `BENCH_train.json`.
pub fn train_baseline(bench: &Json) -> Option<f64> {
    bench
        .get("episodes_per_sec")?
        .as_array()?
        .iter()
        .filter_map(|row| row.get("eps").and_then(Json::as_f64))
        .fold(None, |best, v| Some(best.map_or(v, |b: f64| b.max(v))))
}

/// Committed serve tail latency under load: `open_loop.p99_us` in
/// `BENCH_serve.json` (the open-loop run is the honest latency
/// measurement; closed-loop capacity cases self-throttle).
pub fn serve_p99_baseline(bench: &Json) -> Option<f64> {
    let p99 = bench.get("open_loop")?.get("p99_us")?.as_f64()?;
    (p99 > 0.0).then_some(p99)
}

/// One tail-latency comparison against a committed benchmark baseline.
/// Unlike [`ThroughputCheck`], higher is *worse*: the check regresses when
/// the measurement exceeds the baseline by more than the tolerance.
#[derive(Debug, Clone)]
pub struct LatencyCheck {
    /// What was compared (`serve_p99`).
    pub name: &'static str,
    /// Latency measured from the sidecar, in microseconds.
    pub measured: f64,
    /// Baseline latency from the BENCH file, in microseconds.
    pub baseline: f64,
    /// Allowed fractional growth before failing (1.0 = may run at twice
    /// the baseline).
    pub tolerance: f64,
}

impl LatencyCheck {
    /// Whether the measurement regressed beyond tolerance (got slower).
    pub fn regressed(&self) -> bool {
        self.measured > self.baseline * (1.0 + self.tolerance)
    }

    /// `measured / baseline` (0 when the baseline is 0).
    pub fn ratio(&self) -> f64 {
        if self.baseline > 0.0 {
            self.measured / self.baseline
        } else {
            0.0
        }
    }
}

/// Compare the report's measured p99 decision latency against the
/// committed serve baseline. A check is emitted only when the sidecar has
/// `serve.e2e_s` samples and the BENCH file has a nonzero open-loop p99.
pub fn latency_checks(
    report: &SidecarReport,
    bench_serve: Option<&Json>,
    tolerance: f64,
) -> Vec<LatencyCheck> {
    let mut checks = Vec::new();
    if let (Some(measured), Some(baseline)) = (
        report.serve_p99_us(),
        bench_serve.and_then(serve_p99_baseline),
    ) {
        checks.push(LatencyCheck {
            name: "serve_p99",
            measured,
            baseline,
            tolerance,
        });
    }
    checks
}

/// Compare the report's measured throughputs against whichever baselines
/// are provided and applicable. A check is emitted only when both a
/// measurement and its baseline exist.
pub fn throughput_checks(
    report: &SidecarReport,
    bench_rollout: Option<&Json>,
    bench_serve: Option<&Json>,
    bench_train: Option<&Json>,
    tolerance: f64,
) -> Vec<ThroughputCheck> {
    let mut checks = Vec::new();
    if let (Some(measured), Some(baseline)) = (
        report.rollout_eps(),
        bench_rollout.and_then(rollout_baseline),
    ) {
        checks.push(ThroughputCheck {
            name: "rollout",
            measured,
            baseline,
            tolerance,
        });
    }
    if let (Some(measured), Some(baseline)) =
        (report.serve_qps(), bench_serve.and_then(serve_baseline))
    {
        checks.push(ThroughputCheck {
            name: "serve",
            measured,
            baseline,
            tolerance,
        });
    }
    // Distributed training uses the same episodes/s measurement as the
    // rollout gate (the coordinator heartbeats through the trainer's
    // telemetry) but gates against the committed multi-worker scaling
    // curve, so a scheduling or merge regression shows up even when the
    // single-process rollout path is healthy.
    if let (Some(measured), Some(baseline)) =
        (report.rollout_eps(), bench_train.and_then(train_baseline))
    {
        checks.push(ThroughputCheck {
            name: "train",
            measured,
            baseline,
            tolerance,
        });
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(name: &str, t: f64) -> ReportEvent {
        ReportEvent::SpanOpen {
            name: name.into(),
            t,
        }
    }
    fn close(name: &str, t: f64, dur: f64) -> ReportEvent {
        ReportEvent::SpanClose {
            name: name.into(),
            t,
            dur,
        }
    }
    fn count(name: &str, t: f64, delta: u64) -> ReportEvent {
        ReportEvent::Counter {
            name: name.into(),
            t,
            delta,
        }
    }
    fn gauge(name: &str, t: f64, value: f64) -> ReportEvent {
        ReportEvent::Gauge {
            name: name.into(),
            t,
            value,
        }
    }

    #[test]
    fn nested_spans_aggregate_total_and_self_time() {
        let events = [
            open("epoch", 0.0),
            open("rollout", 0.1),
            close("rollout", 1.1, 1.0),
            open("ppo_update", 1.2),
            close("ppo_update", 1.7, 0.5),
            close("epoch", 2.0, 2.0),
            open("epoch", 2.0),
            open("rollout", 2.1),
            close("rollout", 3.1, 1.0),
            close("epoch", 4.0, 2.0),
        ];
        let (tree, warnings) = aggregate_spans(&events);
        assert!(warnings.is_empty(), "{warnings:?}");
        let epoch = &tree.children["epoch"];
        assert_eq!(epoch.count, 2);
        assert!((epoch.total - 4.0).abs() < 1e-9);
        assert_eq!(epoch.children["rollout"].count, 2);
        assert!((epoch.children["rollout"].total - 2.0).abs() < 1e-9);
        // self = 4.0 - (2.0 rollout + 0.5 ppo) = 1.5
        assert!((epoch.self_time() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn unpaired_spans_warn_but_still_aggregate() {
        // close with no open; open never closed; close skipping an inner.
        let events = [
            close("ghost", 0.5, 0.5),
            open("outer", 1.0),
            open("inner", 1.2),
            close("outer", 2.0, 1.0), // implicitly closes inner
            open("dangling", 2.5),
            count("tick", 3.0, 1), // stream ends at t=3.0
        ];
        let (tree, warnings) = aggregate_spans(&events);
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        assert!(warnings[0].contains("ghost"));
        assert!(!tree.children.contains_key("ghost"));
        let outer = &tree.children["outer"];
        assert_eq!(outer.count, 1);
        assert!((outer.children["inner"].total - 0.8).abs() < 1e-9);
        assert!((tree.children["dangling"].total - 0.5).abs() < 1e-9);
    }

    #[test]
    fn epoch_summaries_window_counters_and_gauges() {
        let events = [
            open("epoch", 0.0),
            count("train.episodes", 0.5, 20),
            gauge("epoch.mean_reward", 0.9, 1.25),
            gauge("ppo.kl", 0.95, 0.01),
            ReportEvent::Heartbeat {
                name: "train".into(),
                t: 1.0,
                epoch: 0,
                eps: 40.0,
            },
            close("epoch", 1.0, 1.0),
            open("epoch", 1.0),
            count("train.episodes", 1.5, 22),
            gauge("epoch.mean_reward", 1.9, 1.5),
            ReportEvent::Heartbeat {
                name: "train".into(),
                t: 2.0,
                epoch: 1,
                eps: 44.0,
            },
            close("epoch", 2.0, 1.0),
        ];
        let report = analyze(&events);
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.epochs[0].episodes, 20);
        assert_eq!(report.epochs[1].episodes, 22);
        assert_eq!(report.epochs[1].index, 1);
        assert_eq!(report.epochs[0].eps, Some(40.0));
        assert_eq!(report.epochs[0].gauges["epoch.mean_reward"], 1.25);
        assert_eq!(report.epochs[1].gauges["epoch.mean_reward"], 1.5);
        assert_eq!(report.counter_totals["train.episodes"], 42);
        assert_eq!(report.mean_heartbeat_eps(), Some(42.0));
        assert_eq!(report.rollout_eps(), Some(42.0));
        let mut text = String::new();
        report.render(&mut text);
        assert!(text.contains("epoch") && text.contains("1.25"));
    }

    #[test]
    fn rollout_eps_falls_back_to_episodes_over_rollout_span() {
        let events = [
            open("epoch", 0.0),
            open("rollout", 0.0),
            count("train.episodes", 1.0, 100),
            close("rollout", 2.0, 2.0),
            close("epoch", 2.5, 2.5),
        ];
        let report = analyze(&events);
        assert_eq!(report.rollout_eps(), Some(50.0));
    }

    #[test]
    fn regression_check_uses_tolerance() {
        let bench = json::parse(
            r#"{"episodes_per_sec":[{"workers":1,"optimized":1000.0},{"workers":4,"optimized":2000.0}]}"#,
        )
        .unwrap();
        assert_eq!(rollout_baseline(&bench), Some(2000.0));
        let slow = ThroughputCheck {
            name: "rollout",
            measured: 900.0,
            baseline: 2000.0,
            tolerance: 0.5,
        };
        assert!(slow.regressed());
        let ok = ThroughputCheck {
            tolerance: 0.6,
            ..slow.clone()
        };
        assert!(!ok.regressed());
        assert!((ok.ratio() - 0.45).abs() < 1e-9);
    }

    #[test]
    fn serve_baseline_reads_open_loop_qps() {
        let bench = json::parse(r#"{"open_loop":{"achieved_qps":59809.76},"config":{}}"#).unwrap();
        assert_eq!(serve_baseline(&bench), Some(59809.76));
        let report = analyze(&[
            count("serve.requests", 1.0, 500),
            count("serve.requests", 2.0, 500),
        ]);
        assert_eq!(report.serve_qps(), Some(500.0));
        let checks = throughput_checks(&report, None, Some(&bench), None, 0.5);
        assert_eq!(checks.len(), 1);
        assert!(checks[0].regressed(), "500 qps vs ~60k baseline");
    }

    #[test]
    fn train_baseline_gates_against_the_scaling_curve_peak() {
        let bench = json::parse(
            r#"{"episodes_per_sec":[{"workers":1,"eps":800.0},{"workers":2,"eps":1500.0},{"workers":4,"eps":2600.0}]}"#,
        )
        .unwrap();
        assert_eq!(train_baseline(&bench), Some(2600.0));
        // No rows -> no baseline -> no check.
        let empty = json::parse(r#"{"episodes_per_sec":[]}"#).unwrap();
        assert_eq!(train_baseline(&empty), None);

        let report = analyze(&[ReportEvent::Heartbeat {
            name: "train".into(),
            t: 1.0,
            epoch: 0,
            eps: 1000.0,
        }]);
        let checks = throughput_checks(&report, None, None, Some(&bench), 0.5);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].name, "train");
        assert!(
            checks[0].regressed(),
            "1000 eps vs 2600 baseline at 0.5 tolerance"
        );
        assert!(!throughput_checks(&report, None, None, Some(&bench), 0.7)[0].regressed());
        assert!(throughput_checks(&report, None, None, Some(&empty), 0.5).is_empty());
    }

    fn hist(name: &str, t: f64, value: f64) -> ReportEvent {
        ReportEvent::Histogram {
            name: name.into(),
            t,
            value,
        }
    }

    #[test]
    fn serve_p99_gate_compares_e2e_samples_to_open_loop_baseline() {
        // 100 samples: 90 fast (100us) and 10 slow (10ms). Nearest-rank
        // p99 is the 99th smallest, which lands in the slow tail -> 10ms.
        let mut events: Vec<ReportEvent> = (0..90)
            .map(|i| hist("serve.e2e_s", i as f64 * 0.01, 100e-6))
            .collect();
        events.extend((0..10).map(|i| hist("serve.e2e_s", 1.0 + i as f64 * 0.01, 10_000e-6)));
        events.push(hist("serve.e2e_s", 1.1, f64::NAN)); // ignored
        let report = analyze(&events);
        let p99 = report.serve_p99_us().expect("samples present");
        assert!((p99 - 10_000.0).abs() < 1e-6, "{p99}");

        let bench = json::parse(r#"{"open_loop":{"achieved_qps":1.0,"p99_us":400.0}}"#).unwrap();
        assert_eq!(serve_p99_baseline(&bench), Some(400.0));
        let checks = latency_checks(&report, Some(&bench), 1.0);
        assert_eq!(checks.len(), 1);
        assert!(checks[0].regressed(), "10ms vs 400us*(1+1.0)");
        assert!((checks[0].ratio() - 25.0).abs() < 1e-9);

        // Generous tolerance passes; a zero baseline emits no check.
        assert!(!latency_checks(&report, Some(&bench), 30.0)[0].regressed());
        let zero = json::parse(r#"{"open_loop":{"p99_us":0.0}}"#).unwrap();
        assert!(latency_checks(&report, Some(&zero), 1.0).is_empty());
    }

    #[test]
    fn quantile_is_nearest_rank() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[7.0], 0.99), Some(7.0));
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.50), Some(50.0));
        assert_eq!(quantile(&v, 0.99), Some(99.0));
        assert_eq!(quantile(&v, 1.0), Some(100.0));
    }

    #[test]
    fn parse_line_handles_every_kind_and_rejects_garbage() {
        let ev = parse_line(r#"{"kind":"heartbeat","name":"train","t":1.0,"epoch":2,"eps":10.5}"#)
            .unwrap();
        assert_eq!(
            ev,
            ReportEvent::Heartbeat {
                name: "train".into(),
                t: 1.0,
                epoch: 2,
                eps: 10.5
            }
        );
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"kind":"mystery","name":"x","t":0}"#).is_err());
    }

    #[test]
    fn trace_events_parse_and_surface_in_telemetry_health() {
        let promoted = parse_line(
            r#"{"kind":"trace_promoted","name":"serve.trace","t":1.0,"trace":"00000000000000ab","reason":"slow","spans":5}"#,
        )
        .unwrap();
        assert_eq!(
            promoted,
            ReportEvent::TracePromoted {
                name: "serve.trace".into(),
                t: 1.0,
                trace: 0xab,
                reason: "slow".into(),
                spans: 5
            }
        );
        let record = parse_line(
            r#"{"kind":"flight_record","name":"queue","t":1.1,"trace":"00000000000000ab","span":"0000000000000002","parent":"0000000000000000","status":"ok","shard":0,"batch_seq":1,"generation":1,"start_ns":5,"end_ns":9}"#,
        )
        .unwrap();
        assert!(matches!(
            record,
            ReportEvent::FlightRecord { trace: 0xab, .. }
        ));

        let events = [
            promoted,
            record,
            count("obs.trace.recorded", 2.0, 100),
            count("obs.trace.promoted", 2.0, 1),
            count("obs.trace.ring_overwrites", 2.0, 3),
            count("obs.sink.dropped_events", 2.0, 0),
        ];
        let report = analyze(&events);
        assert_eq!(report.promoted_traces, vec![(0xab, "slow".to_string())]);
        assert!(
            report.warnings.iter().any(|w| w.contains("overwrote 3")),
            "{:?}",
            report.warnings
        );
        let mut text = String::new();
        report.render(&mut text);
        assert!(text.contains("telemetry health"), "{text}");
        assert!(text.contains("obs.trace.ring_overwrites"), "{text}");
        assert!(
            text.contains("WARNING: flight recorder overwrote 3"),
            "{text}"
        );
        assert!(text.contains("trace 00000000000000ab (slow)"), "{text}");

        // Zero overwrites: counters surface, but no warning line.
        let clean = analyze(&[count("obs.trace.recorded", 1.0, 10)]);
        assert!(clean.warnings.is_empty());
        let mut text = String::new();
        clean.render(&mut text);
        assert!(text.contains("telemetry health"));
        assert!(!text.contains("WARNING: flight recorder"));
    }

    #[test]
    fn sidecar_file_errors_name_path_and_line() {
        let dir = std::env::temp_dir().join("obs-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(
            &path,
            "{\"kind\":\"counter\",\"name\":\"a\",\"t\":0.1,\"delta\":1}\nBROKEN LINE\n",
        )
        .unwrap();
        let err = parse_sidecar(&path).expect_err("parse fails");
        assert!(err.contains("bad.jsonl:2:"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
