//! **obs** — zero-cost-when-disabled training/rollout telemetry.
//!
//! The training stack is instrumented with lightweight *spans* (monotonic
//! wall-time regions such as `rollout` or `ppo_update`), *counters*
//! (rejections, baseline-cache hits), *gauges* (KL, clip fraction,
//! utilization), and *histogram samples* (per-minibatch losses). Every
//! instrumentation point goes through a [`Telemetry`] handle:
//!
//! * a **disabled** handle ([`Telemetry::disabled`]) is a `None` internally —
//!   every call is a branch on an `Option` and nothing else: no clock reads,
//!   no event construction, no allocation;
//! * an **enabled** handle forwards stack-built [`Event`]s to a pluggable
//!   [`Sink`]: [`NullSink`] (discard; measures framework overhead),
//!   [`JsonlSink`] (one JSON object per line, the sidecar format experiment
//!   binaries emit), or [`InMemorySink`] (buffered, with assertion helpers
//!   for tests).
//!
//! Handles are cheaply cloneable (`Arc` internally) and shared freely
//! across rollout worker threads.
//!
//! # Example
//!
//! ```
//! let (telemetry, sink) = obs::Telemetry::in_memory();
//! {
//!     let _span = obs::span!(telemetry, "ppo_update");
//!     telemetry.count("train.rejections", 3);
//!     telemetry.gauge("ppo.kl", 0.012);
//! }
//! telemetry.flush();
//! assert_eq!(sink.counter_total("train.rejections"), 3);
//! assert_eq!(sink.span_durations("ppo_update").len(), 1);
//! sink.check_span_pairing().unwrap();
//! sink.check_monotonic_timestamps().unwrap();
//! ```

pub mod clock;
mod error;
mod event;
pub mod exporter;
pub mod expose;
pub mod hist;
pub mod json;
pub mod registry;
pub mod report;
mod sink;
pub mod trace;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use error::ObsError;
pub use event::Event;
pub use exporter::MetricsExporter;
pub use hist::LogLinearHistogram;
pub use registry::{Counter, Gauge, Histogram, Registry, RegistryCounts, RegistrySink, TeeSink};
pub use sink::{InMemorySink, JsonlSink, NullSink, Sink};
pub use trace::{Recorder, SpanKind, SpanRecord, SpanStatus, TraceStats};

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

struct Inner {
    t0: Instant,
    sink: Arc<dyn Sink>,
    /// Whether the sink reads event timestamps ([`Sink::wants_time`],
    /// cached here so the hot path pays a field load, not a dyn call).
    /// When `false`, events carry `t == 0.0` and no clock is read.
    timed: bool,
}

/// A telemetry handle: the single type every instrumented component takes.
///
/// Clone it freely — clones share the sink and the time origin. The
/// default handle is disabled.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A no-op handle: every recording call is a single branch.
    pub const fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle delivering events to `sink`. The handle's clock
    /// starts now: event timestamps are seconds since this call.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        let timed = sink.wants_time();
        Telemetry {
            inner: Some(Arc::new(Inner {
                t0: Instant::now(),
                sink,
                timed,
            })),
        }
    }

    /// An enabled handle writing JSONL to a freshly created file.
    /// Creation failures surface as [`ObsError::Sidecar`] naming the path.
    pub fn jsonl(path: &Path) -> Result<Self, ObsError> {
        Ok(Self::new(Arc::new(JsonlSink::create(path)?)))
    }

    /// An enabled handle that both streams JSONL to `path` *and*
    /// aggregates every event into `registry` live, so the same
    /// instrumentation feeds offline analysis and `/metrics`. Sidecar
    /// write failures are counted on the registry's
    /// `obs.sink.dropped_events` counter.
    pub fn jsonl_with_registry(path: &Path, registry: Arc<Registry>) -> Result<Self, ObsError> {
        let dropped = registry.counter(
            "obs.sink.dropped_events",
            "telemetry events dropped by sidecar write failures",
        );
        let jsonl = JsonlSink::create(path)?.with_dropped_counter(dropped);
        Ok(Self::new(Arc::new(TeeSink::new(vec![
            Arc::new(jsonl),
            Arc::new(RegistrySink::new(registry)),
        ]))))
    }

    /// An enabled handle aggregating into `registry` only (no sidecar).
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Self::new(Arc::new(RegistrySink::new(registry)))
    }

    /// An enabled handle backed by an [`InMemorySink`]; returns the sink
    /// too so tests can inspect what was recorded.
    pub fn in_memory() -> (Self, Arc<InMemorySink>) {
        let sink = Arc::new(InMemorySink::new());
        (Self::new(sink.clone()), sink)
    }

    /// Whether events are being recorded at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since the handle was created (0 when disabled).
    #[inline]
    pub fn now(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.t0.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    #[inline]
    fn record(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.sink.record(&event);
        }
    }

    /// Event timestamp: seconds since creation, or `0.0` without touching
    /// the clock when every sink declines timestamps ([`Sink::wants_time`]).
    #[inline]
    fn event_t(&self) -> f64 {
        match &self.inner {
            Some(inner) if inner.timed => inner.t0.elapsed().as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Open a timed span; the span records its duration when dropped.
    /// Prefer the [`span!`] macro, which reads as a statement.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            Some(inner) => {
                let start = Instant::now();
                let t = if inner.timed {
                    start.duration_since(inner.t0).as_secs_f64()
                } else {
                    0.0
                };
                inner.sink.record(&Event::SpanOpen { name, t });
                Span {
                    telemetry: self.clone(),
                    name,
                    start: Some(start),
                }
            }
            None => Span {
                telemetry: Telemetry::disabled(),
                name,
                start: None,
            },
        }
    }

    /// Add `delta` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if self.is_enabled() {
            self.record(Event::Counter {
                name,
                t: self.event_t(),
                delta,
            });
        }
    }

    /// Record the current value of the gauge `name`.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if self.is_enabled() {
            self.record(Event::Gauge {
                name,
                t: self.event_t(),
                value,
            });
        }
    }

    /// Record one sample of the distribution `name`.
    #[inline]
    pub fn observe(&self, name: &'static str, value: f64) {
        if self.is_enabled() {
            self.record(Event::Histogram {
                name,
                t: self.event_t(),
                value,
            });
        }
    }

    /// Record a trainer liveness heartbeat: `epoch` just completed at
    /// `eps` episodes per second.
    #[inline]
    pub fn heartbeat(&self, name: &'static str, epoch: u64, eps: f64) {
        if self.is_enabled() {
            self.record(Event::Heartbeat {
                name,
                t: self.event_t(),
                epoch,
                eps,
            });
        }
    }

    /// Record a registry-size snapshot (emitted by the metrics exporter on
    /// each scrape).
    #[inline]
    pub fn registry_snapshot(&self, name: &'static str, counts: RegistryCounts) {
        if self.is_enabled() {
            self.record(Event::RegistrySnapshot {
                name,
                t: self.event_t(),
                counters: counts.counters,
                gauges: counts.gauges,
                histograms: counts.histograms,
            });
        }
    }

    /// Record a tail-sampling promotion: `trace` was kept for `reason`
    /// with `spans` spans collected from the flight recorder.
    #[inline]
    pub fn trace_promoted(&self, name: &'static str, trace: u64, reason: &'static str, spans: u64) {
        if self.is_enabled() {
            self.record(Event::TracePromoted {
                name,
                t: self.event_t(),
                trace,
                reason,
                spans,
            });
        }
    }

    /// Record one promoted flight-recorder span as a sidecar line.
    #[inline]
    pub fn flight_record(&self, rec: &trace::SpanRecord) {
        if self.is_enabled() {
            self.record(Event::FlightRecord {
                name: rec.kind.as_str(),
                t: self.event_t(),
                trace: rec.trace_id,
                span: rec.span_id,
                parent: rec.parent_id,
                status: rec.status.as_str(),
                shard: rec.shard as u64,
                batch_seq: rec.batch_seq,
                generation: rec.model_generation,
                start_ns: rec.start_ns,
                end_ns: rec.end_ns,
            });
        }
    }

    /// Flush the sink's buffered output.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// RAII guard for a timed region; records a `span_close` event (with the
/// region's duration) on drop. Created by [`Telemetry::span`] / [`span!`].
#[must_use = "a span measures the region it is alive for; bind it to a variable"]
pub struct Span {
    telemetry: Telemetry,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Seconds elapsed since the span opened (0 when telemetry is disabled).
    pub fn elapsed(&self) -> f64 {
        self.start.map_or(0.0, |s| s.elapsed().as_secs_f64())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur = start.elapsed().as_secs_f64();
            self.telemetry.record(Event::SpanClose {
                name: self.name,
                t: self.telemetry.event_t(),
                dur,
            });
        }
    }
}

/// Open a timed span on a [`Telemetry`] handle:
///
/// ```
/// let telemetry = obs::Telemetry::disabled();
/// let _guard = obs::span!(telemetry, "rollout");
/// ```
///
/// The guard records the span's duration when it goes out of scope.
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:literal) => {
        $telemetry.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_costs_nothing_visible() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.now(), 0.0);
        let span = span!(t, "epoch");
        assert_eq!(span.elapsed(), 0.0);
        drop(span);
        t.count("c", 1);
        t.gauge("g", 1.0);
        t.observe("h", 1.0);
        t.flush();
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn spans_record_open_close_with_nonnegative_duration() {
        let (t, sink) = Telemetry::in_memory();
        {
            let _outer = span!(t, "epoch");
            let _inner = span!(t, "rollout");
        }
        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert!(matches!(events[0], Event::SpanOpen { name: "epoch", .. }));
        assert!(matches!(
            events[1],
            Event::SpanOpen {
                name: "rollout",
                ..
            }
        ));
        // Guards drop in reverse declaration order: inner closes first.
        assert!(matches!(
            events[2],
            Event::SpanClose {
                name: "rollout",
                ..
            }
        ));
        assert!(matches!(events[3], Event::SpanClose { name: "epoch", .. }));
        sink.check_span_pairing().expect("paired");
        sink.check_monotonic_timestamps().expect("monotonic");
        for d in sink.span_durations("epoch") {
            assert!(d >= 0.0);
        }
    }

    #[test]
    fn clones_share_the_sink_and_clock() {
        let (t, sink) = Telemetry::in_memory();
        let t2 = t.clone();
        t.count("c", 1);
        t2.count("c", 2);
        assert_eq!(sink.counter_total("c"), 3);
        assert!(t2.is_enabled());
    }

    #[test]
    fn span_elapsed_advances_when_enabled() {
        let (t, _sink) = Telemetry::in_memory();
        let span = t.span("s");
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(span.elapsed() > 0.0);
    }

    #[test]
    fn sinks_that_decline_timestamps_see_zero_but_real_durations() {
        struct Untimed(std::sync::Mutex<Vec<(f64, f64)>>);
        impl Sink for Untimed {
            fn record(&self, event: &Event) {
                let dur = match *event {
                    Event::SpanClose { dur, .. } => dur,
                    _ => -1.0,
                };
                self.0.lock().unwrap().push((event.t(), dur));
            }
            fn wants_time(&self) -> bool {
                false
            }
        }
        let sink = Arc::new(Untimed(std::sync::Mutex::new(Vec::new())));
        let t = Telemetry::new(sink.clone());
        t.count("c", 1);
        {
            let _span = span!(t, "s");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = sink.0.lock().unwrap().clone();
        // Timestamps are zeroed (no clock read), but span durations are
        // still measured for aggregation.
        assert!(events.iter().all(|&(t, _)| t == 0.0));
        let (_, dur) = events[events.len() - 1];
        assert!(dur > 0.0);
    }

    #[test]
    fn timed_sinks_still_get_monotonic_timestamps() {
        // InMemorySink keeps the default `wants_time`, so the tee must
        // report timestamps wanted and events must carry real times.
        let mem = Arc::new(InMemorySink::new());
        let tee = TeeSink::new(vec![
            Arc::new(RegistrySink::new(Arc::new(Registry::new()))),
            mem.clone(),
        ]);
        assert!(tee.wants_time());
        let t = Telemetry::new(Arc::new(tee));
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.count("c", 1);
        let events = mem.events();
        assert!(events[0].t() > 0.0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let (t, sink) = Telemetry::in_memory();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        t.count("n", 1);
                    }
                });
            }
        });
        assert_eq!(sink.counter_total("n"), 400);
    }
}
