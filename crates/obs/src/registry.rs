//! **The live metrics registry** — process-wide aggregated counters,
//! gauges, and histograms, readable at any time by the pull-based
//! exposition endpoint ([`crate::exporter`]) or the serve daemon's `stats`
//! verb.
//!
//! Two ways in:
//!
//! * **handles** — [`Registry::counter`] / [`Registry::gauge`] /
//!   [`Registry::histogram`] return cheaply-cloneable handles whose update
//!   path is *lock-free*: a relaxed atomic op, no allocation, no map
//!   lookup. Long-lived components (the serve daemon's `ServerStats`,
//!   trainer heartbeats) register once and update through handles;
//! * **[`RegistrySink`]** — a [`Sink`](crate::Sink) that aggregates the
//!   existing [`Telemetry`](crate::Telemetry) event stream live, so every
//!   instrumentation point added for JSONL sidecars also shows up on
//!   `/metrics` with no extra code. The sink keeps a lock-free
//!   pointer-keyed handle cache: after a name's first event, recording is
//!   one acquire-load on an unchanging cache slot plus the handle's
//!   relaxed atomic op — no lock word, no map walk, no allocation. (Event
//!   names are `&'static str`, so the string's address is a stable cache
//!   key; distinct addresses with equal text simply occupy two slots that
//!   resolve to the same registry metric.)
//!
//! Metric names are dotted telemetry identifiers (`train.episodes`);
//! Prometheus-legal names are produced at exposition time by
//! [`crate::expose`].

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::hist::LogLinearHistogram;
use crate::{Event, Sink};

/// A monotonically increasing counter handle. Clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter, not registered anywhere (still fully usable).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time measurement handle (stores `f64` bits atomically).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A detached gauge, not registered anywhere.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Overwrite the current value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 until first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistCore {
    hist: LogLinearHistogram,
    /// Exact `f64` sum of observed values (CAS loop; negative samples
    /// contribute here even though they clamp to bucket 0).
    fsum: AtomicU64,
    /// Ticks per unit: an f64 observation of `v` records
    /// `(v.max(0) * scale)` ticks. The default `1e9` gives nanosecond
    /// resolution to seconds-valued samples.
    scale: f64,
}

/// A distribution handle backed by a shared [`LogLinearHistogram`].
///
/// Values are `f64` in the metric's natural unit (seconds for latencies);
/// raw tick recording ([`Histogram::observe_ticks`]) is provided for hot
/// paths that already hold integer ticks (the serve daemon's nanosecond
/// latencies). Negative observations clamp to the zero bucket but are
/// summed exactly.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistCore>);

/// Default ticks-per-unit scale (nanosecond resolution for seconds).
pub const DEFAULT_HIST_SCALE: f64 = 1e9;

impl Histogram {
    /// A detached histogram with the default scale.
    pub fn detached() -> Self {
        Histogram(Arc::new(HistCore {
            hist: LogLinearHistogram::new(),
            fsum: AtomicU64::new(0f64.to_bits()),
            scale: DEFAULT_HIST_SCALE,
        }))
    }

    fn add_sum(&self, v: f64) {
        let _ = self
            .0
            .fsum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Record one observation in the metric's unit.
    #[inline]
    pub fn observe(&self, value: f64) {
        let ticks = (value.max(0.0) * self.0.scale).min(u64::MAX as f64) as u64;
        self.0.hist.record(ticks);
        self.add_sum(value);
    }

    /// Record one observation already expressed in ticks.
    #[inline]
    pub fn observe_ticks(&self, ticks: u64) {
        self.0.hist.record(ticks);
        self.add_sum(ticks as f64 / self.0.scale);
    }

    /// Record one tick observation and remember it as its bucket's
    /// exemplar (`trace_id == 0` records without an exemplar), so the
    /// `/metrics` bucket line can point at the concrete trace.
    #[inline]
    pub fn observe_ticks_exemplar(&self, ticks: u64, trace_id: u64) {
        self.0.hist.record_exemplar(ticks, trace_id);
        self.add_sum(ticks as f64 / self.0.scale);
    }

    /// Non-empty exemplars as `(bucket_upper_units, value_units, trace_id)`
    /// in ascending bucket order.
    pub fn exemplars(&self) -> Vec<(f64, f64, u64)> {
        self.0
            .hist
            .exemplars()
            .into_iter()
            .map(|(upper, value, trace)| {
                (
                    upper as f64 / self.0.scale,
                    value as f64 / self.0.scale,
                    trace,
                )
            })
            .collect()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.hist.count()
    }

    /// Exact sum of observations, in the metric's unit.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.fsum.load(Ordering::Relaxed))
    }

    /// Mean observation in ticks (0 when empty).
    pub fn mean_ticks(&self) -> f64 {
        self.0.hist.mean()
    }

    /// The `q`-quantile in ticks.
    pub fn quantile_ticks(&self, q: f64) -> u64 {
        self.0.hist.quantile(q)
    }

    /// Ticks-per-unit scale.
    pub fn scale(&self) -> f64 {
        self.0.scale
    }

    /// Cumulative `(upper_bound_in_units, count)` pairs for exposition.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        self.0
            .hist
            .cumulative_buckets()
            .into_iter()
            .map(|(upper, cum)| (upper as f64 / self.0.scale, cum))
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::detached()
    }
}

/// One registered metric.
pub(crate) enum MetricKind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

pub(crate) struct Family {
    pub(crate) help: &'static str,
    pub(crate) metric: MetricKind,
}

/// Registry size summary (for `registry_snapshot` telemetry events and
/// tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryCounts {
    /// Registered counter families.
    pub counters: u64,
    /// Registered gauge families.
    pub gauges: u64,
    /// Registered histogram families, span-duration histograms included.
    pub histograms: u64,
}

/// The metrics registry. Cheap to share (`Arc` it); see the module docs
/// for the two ingestion paths.
pub struct Registry {
    families: RwLock<BTreeMap<&'static str, Family>>,
    /// Span-duration histograms live in their own namespace so a span and
    /// a counter may share a name without conflict.
    spans: RwLock<BTreeMap<&'static str, Histogram>>,
    /// Events the registry could not aggregate (name registered under a
    /// different kind). Exposed as `obs.registry_conflicts` in `/metrics`.
    conflicts: Counter,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        let r = Registry {
            families: RwLock::new(BTreeMap::new()),
            spans: RwLock::new(BTreeMap::new()),
            conflicts: Counter::detached(),
        };
        let c = r.conflicts.clone();
        r.families.write().expect("registry lock").insert(
            "obs.registry_conflicts",
            Family {
                help: "events dropped because the metric name was registered under another kind",
                metric: MetricKind::Counter(c),
            },
        );
        r
    }

    fn get_or_register<H: Clone>(
        &self,
        name: &'static str,
        help: &'static str,
        pick: impl Fn(&MetricKind) -> Option<H>,
        make: impl Fn(H) -> MetricKind,
        fresh: impl Fn() -> H,
    ) -> H {
        if let Some(family) = self.families.read().expect("registry lock").get(name) {
            if let Some(h) = pick(&family.metric) {
                return h;
            }
            // Registered under a different kind: hand back a detached
            // handle so the caller still works, and count the conflict.
            self.conflicts.inc();
            return fresh();
        }
        let mut families = self.families.write().expect("registry lock");
        // Re-check under the write lock (another thread may have won).
        if let Some(family) = families.get(name) {
            return match pick(&family.metric) {
                Some(h) => h,
                None => {
                    self.conflicts.inc();
                    fresh()
                }
            };
        }
        let h = fresh();
        families.insert(
            name,
            Family {
                help,
                metric: make(h.clone()),
            },
        );
        h
    }

    /// The counter registered under `name`, registering it on first use.
    /// If `name` is already a gauge or histogram, a detached handle is
    /// returned and the conflict counted.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.get_or_register(
            name,
            help,
            |m| match m {
                MetricKind::Counter(c) => Some(c.clone()),
                _ => None,
            },
            MetricKind::Counter,
            Counter::detached,
        )
    }

    /// The gauge registered under `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.get_or_register(
            name,
            help,
            |m| match m {
                MetricKind::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            MetricKind::Gauge,
            Gauge::detached,
        )
    }

    /// The histogram registered under `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.get_or_register(
            name,
            help,
            |m| match m {
                MetricKind::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            MetricKind::Histogram,
            Histogram::detached,
        )
    }

    /// The span-duration histogram for span `name` (own namespace; exposed
    /// as `…_span_<name>_seconds`).
    pub fn span_histogram(&self, name: &'static str) -> Histogram {
        if let Some(h) = self.spans.read().expect("registry lock").get(name) {
            return h.clone();
        }
        let mut spans = self.spans.write().expect("registry lock");
        spans.entry(name).or_default().clone()
    }

    /// Registry size summary.
    pub fn counts(&self) -> RegistryCounts {
        let families = self.families.read().expect("registry lock");
        let mut counts = RegistryCounts {
            counters: 0,
            gauges: 0,
            histograms: self.spans.read().expect("registry lock").len() as u64,
        };
        for family in families.values() {
            match family.metric {
                MetricKind::Counter(_) => counts.counters += 1,
                MetricKind::Gauge(_) => counts.gauges += 1,
                MetricKind::Histogram(_) => counts.histograms += 1,
            }
        }
        counts
    }

    /// Render the whole registry in Prometheus text exposition format.
    pub fn render(&self, out: &mut String) {
        crate::expose::render_registry(self, out);
    }

    pub(crate) fn with_families<R>(
        &self,
        f: impl FnOnce(&BTreeMap<&'static str, Family>, &BTreeMap<&'static str, Histogram>) -> R,
    ) -> R {
        let families = self.families.read().expect("registry lock");
        let spans = self.spans.read().expect("registry lock");
        f(&families, &spans)
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counts();
        f.debug_struct("Registry")
            .field("counters", &c.counters)
            .field("gauges", &c.gauges)
            .field("histograms", &c.histograms)
            .finish()
    }
}

/// A resolved handle in the [`RegistrySink`] cache. Span histograms get
/// their own variant because spans live in a separate registry namespace:
/// a span and a counter may share a name, so they must also be
/// distinguishable in the cache.
enum CachedHandle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Span(Histogram),
}

const CACHE_SLOTS: usize = 256;
const CACHE_PROBES: usize = 8;
const KEY_EMPTY: usize = 0;
const KEY_CLAIMED: usize = 1;

/// One cache slot. `key` is [`KEY_EMPTY`], [`KEY_CLAIMED`] (a writer is
/// mid-publication), or the address of the event name's `&'static str`
/// data. `value` is written exactly once, between the empty→claimed CAS
/// and the release-store of the final key, so any reader that observes
/// `key == name_ptr` with acquire ordering sees a fully initialized,
/// never-again-mutated value.
struct CacheSlot {
    key: AtomicUsize,
    value: UnsafeCell<Option<CachedHandle>>,
}

struct HandleCache {
    slots: Box<[CacheSlot]>,
}

// SAFETY: the publication protocol above makes cross-thread reads of
// `value` data-race-free; slots are never mutated after publication.
unsafe impl Sync for HandleCache {}
unsafe impl Send for HandleCache {}

impl HandleCache {
    fn new() -> Self {
        HandleCache {
            slots: (0..CACHE_SLOTS)
                .map(|_| CacheSlot {
                    key: AtomicUsize::new(KEY_EMPTY),
                    value: UnsafeCell::new(None),
                })
                .collect(),
        }
    }

    /// Apply `apply` to the handle cached for `name` (accepting only the
    /// variant `matches` recognizes); on a miss, resolve through
    /// `resolve`, apply, and publish into a free probed slot if any.
    fn with(
        &self,
        name: &'static str,
        matches: impl Fn(&CachedHandle) -> bool,
        resolve: impl FnOnce() -> CachedHandle,
        apply: impl Fn(&CachedHandle),
    ) {
        let key = name.as_ptr() as usize;
        debug_assert!(key > KEY_CLAIMED);
        let mask = CACHE_SLOTS - 1;
        let mut idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) & mask;
        let mut free: Option<&CacheSlot> = None;
        for _ in 0..CACHE_PROBES {
            let slot = &self.slots[idx];
            match slot.key.load(Ordering::Acquire) {
                k if k == key => {
                    // SAFETY: published slots are immutable (see CacheSlot).
                    if let Some(h) = unsafe { &*slot.value.get() } {
                        if matches(h) {
                            apply(h);
                            return;
                        }
                        // Same name in another namespace; keep probing.
                    }
                }
                KEY_EMPTY if free.is_none() => free = Some(slot),
                _ => {}
            }
            idx = (idx + 1) & mask;
        }
        let handle = resolve();
        apply(&handle);
        if let Some(slot) = free {
            if slot
                .key
                .compare_exchange(KEY_EMPTY, KEY_CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS gives this thread exclusive write access;
                // no reader dereferences while the key is KEY_CLAIMED.
                unsafe { *slot.value.get() = Some(handle) };
                slot.key.store(key, Ordering::Release);
            }
        }
    }
}

/// A [`Sink`] that aggregates telemetry events into a [`Registry`] live:
/// counter events add to counters, gauges overwrite gauges, histogram
/// samples feed histograms, span closes feed per-span duration
/// histograms, and heartbeats set `<name>.epoch` / `<name>.eps` gauges.
/// `span_open` and `registry_snapshot` events carry no aggregate state
/// and are ignored.
pub struct RegistrySink {
    registry: Arc<Registry>,
    cache: HandleCache,
}

impl RegistrySink {
    /// A sink aggregating into `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        RegistrySink {
            registry,
            cache: HandleCache::new(),
        }
    }

    /// The registry this sink feeds.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

const EVENT_HELP: &str = "aggregated from telemetry events";

impl Sink for RegistrySink {
    fn record(&self, event: &Event) {
        match *event {
            Event::Counter { name, delta, .. } => self.cache.with(
                name,
                |h| matches!(h, CachedHandle::Counter(_)),
                || CachedHandle::Counter(self.registry.counter(name, EVENT_HELP)),
                |h| {
                    if let CachedHandle::Counter(c) = h {
                        c.add(delta);
                    }
                },
            ),
            Event::Gauge { name, value, .. } => self.cache.with(
                name,
                |h| matches!(h, CachedHandle::Gauge(_)),
                || CachedHandle::Gauge(self.registry.gauge(name, EVENT_HELP)),
                |h| {
                    if let CachedHandle::Gauge(g) = h {
                        g.set(value);
                    }
                },
            ),
            Event::Histogram { name, value, .. } => self.cache.with(
                name,
                |h| matches!(h, CachedHandle::Histogram(_)),
                || CachedHandle::Histogram(self.registry.histogram(name, EVENT_HELP)),
                |h| {
                    if let CachedHandle::Histogram(hist) = h {
                        hist.observe(value);
                    }
                },
            ),
            Event::SpanClose { name, dur, .. } => self.cache.with(
                name,
                |h| matches!(h, CachedHandle::Span(_)),
                || CachedHandle::Span(self.registry.span_histogram(name)),
                |h| {
                    if let CachedHandle::Span(hist) = h {
                        hist.observe(dur);
                    }
                },
            ),
            Event::Heartbeat {
                name, epoch, eps, ..
            } => {
                // Static composite names for the two trainers we ship;
                // other heartbeat sources aggregate under generic names.
                let (epoch_name, eps_name) = match name {
                    "train" => ("train.epoch", "train.episodes_per_sec"),
                    "selector" => ("selector.epoch", "selector.episodes_per_sec"),
                    _ => ("heartbeat.epoch", "heartbeat.eps"),
                };
                self.registry
                    .gauge(epoch_name, "last heartbeat epoch index")
                    .set(epoch as f64);
                self.registry
                    .gauge(eps_name, "episodes per second at last heartbeat")
                    .set(eps);
            }
            // Trace events are per-request records, not aggregates; the
            // recorder keeps its own counters (`obs.trace.*`).
            Event::SpanOpen { .. }
            | Event::RegistrySnapshot { .. }
            | Event::TracePromoted { .. }
            | Event::FlightRecord { .. } => {}
        }
    }

    /// Aggregation only reads names and values; registry-only handles
    /// skip the per-event clock read entirely.
    fn wants_time(&self) -> bool {
        false
    }
}

/// Fans every event (and flush) out to several sinks, so a run can stream
/// a JSONL sidecar *and* aggregate live metrics at once.
pub struct TeeSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl TeeSink {
    /// A sink forwarding to every sink in `sinks`, in order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        TeeSink { sinks }
    }
}

impl Sink for TeeSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }

    /// Timestamps are produced if *any* fan-out target reads them.
    fn wants_time(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_register_once() {
        let r = Registry::new();
        let a = r.counter("c", "help");
        let b = r.counter("c", "other help ignored");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.counts().counters, 2); // c + obs.registry_conflicts

        let g = r.gauge("g", "");
        g.set(0.25);
        assert_eq!(r.gauge("g", "").get(), 0.25);

        let h = r.histogram("h", "");
        h.observe(1.5);
        assert_eq!(r.histogram("h", "").count(), 1);
        assert_eq!(
            r.counts(),
            RegistryCounts {
                counters: 2,
                gauges: 1,
                histograms: 1
            }
        );
    }

    #[test]
    fn kind_conflicts_return_detached_handles_and_are_counted() {
        let r = Registry::new();
        let c = r.counter("x", "");
        c.add(3);
        let g = r.gauge("x", ""); // wrong kind
        g.set(9.0);
        assert_eq!(r.counter("x", "").get(), 3, "original survives");
        assert_eq!(r.counter("obs.registry_conflicts", "").get(), 1);
        // The detached gauge still works, it is just invisible.
        assert_eq!(g.get(), 9.0);
    }

    #[test]
    fn histogram_units_and_negative_samples() {
        let h = Histogram::detached();
        h.observe(0.001); // 1ms -> 1e6 ticks
        h.observe(-2.0); // clamps to bucket 0, sums exactly
        assert_eq!(h.count(), 2);
        assert!((h.sum() - (-1.999)).abs() < 1e-9);
        assert!(h.quantile_ticks(1.0) >= 900_000);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, 2);
        assert_eq!(buckets[0].1, 1, "negative sample lands in bucket 0");
    }

    #[test]
    fn registry_sink_aggregates_every_event_kind() {
        let registry = Arc::new(Registry::new());
        let sink = RegistrySink::new(Arc::clone(&registry));
        sink.record(&Event::Counter {
            name: "n",
            t: 0.0,
            delta: 2,
        });
        sink.record(&Event::Counter {
            name: "n",
            t: 0.1,
            delta: 3,
        });
        sink.record(&Event::Gauge {
            name: "kl",
            t: 0.2,
            value: 0.01,
        });
        sink.record(&Event::Histogram {
            name: "loss",
            t: 0.3,
            value: 0.5,
        });
        sink.record(&Event::SpanOpen {
            name: "epoch",
            t: 0.0,
        });
        sink.record(&Event::SpanClose {
            name: "epoch",
            t: 0.4,
            dur: 0.4,
        });
        sink.record(&Event::Heartbeat {
            name: "train",
            t: 0.5,
            epoch: 7,
            eps: 123.0,
        });
        assert_eq!(registry.counter("n", "").get(), 5);
        assert_eq!(registry.gauge("kl", "").get(), 0.01);
        assert_eq!(registry.histogram("loss", "").count(), 1);
        assert_eq!(registry.span_histogram("epoch").count(), 1);
        assert_eq!(registry.gauge("train.epoch", "").get(), 7.0);
        assert_eq!(registry.gauge("train.episodes_per_sec", "").get(), 123.0);
    }

    #[test]
    fn tee_sink_delivers_to_all() {
        let (a, b) = (
            Arc::new(crate::InMemorySink::new()),
            Arc::new(crate::InMemorySink::new()),
        );
        let tee = TeeSink::new(vec![a.clone(), b.clone()]);
        tee.record(&Event::Counter {
            name: "c",
            t: 0.0,
            delta: 1,
        });
        tee.flush();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn sink_cache_survives_span_and_counter_sharing_a_name() {
        // "epoch" as both a counter and a span must aggregate separately
        // even though both cache under the same name pointer.
        let registry = Arc::new(Registry::new());
        let sink = RegistrySink::new(Arc::clone(&registry));
        for i in 0..100 {
            sink.record(&Event::Counter {
                name: "epoch",
                t: i as f64,
                delta: 1,
            });
            sink.record(&Event::SpanClose {
                name: "epoch",
                t: i as f64,
                dur: 0.5,
            });
        }
        assert_eq!(registry.counter("epoch", "").get(), 100);
        assert_eq!(registry.span_histogram("epoch").count(), 100);
        assert_eq!(registry.counter("obs.registry_conflicts", "").get(), 0);
    }

    #[test]
    fn sink_records_concurrently_without_losing_events() {
        let registry = Arc::new(Registry::new());
        let sink = Arc::new(RegistrySink::new(Arc::clone(&registry)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        sink.record(&Event::Counter {
                            name: "hot.counter",
                            t: i as f64,
                            delta: 1,
                        });
                        if i % 100 == 0 {
                            sink.record(&Event::Histogram {
                                name: "hot.hist",
                                t: i as f64,
                                value: 0.25,
                            });
                        }
                    }
                });
            }
        });
        assert_eq!(registry.counter("hot.counter", "").get(), 40_000);
        assert_eq!(registry.histogram("hot.hist", "").count(), 400);
        assert_eq!(registry.counter("obs.registry_conflicts", "").get(), 0);
    }

    #[test]
    fn concurrent_handle_updates_are_exact() {
        let r = Arc::new(Registry::new());
        let c = r.counter("hot", "");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
