//! Prometheus text exposition format (version 0.0.4) encoding for the
//! metrics [`Registry`](crate::registry::Registry).
//!
//! Dotted telemetry names (`train.episodes`) become Prometheus-legal
//! names (`schedinspector_train_episodes`): every metric is prefixed with
//! the process namespace, illegal characters map to `_`, counters gain the
//! conventional `_total` suffix, and histograms expand into cumulative
//! `_bucket{le="…"}` series plus `_sum` / `_count`.

use std::fmt::Write as _;

use crate::registry::{Histogram, MetricKind, Registry};

/// Namespace prefix for every exposed metric.
pub const NAMESPACE: &str = "schedinspector";

/// Sanitize `name` into a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixed with [`NAMESPACE`]. Dots and any
/// other illegal characters become `_`; an empty or all-illegal name still
/// yields a legal one (`schedinspector_`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(NAMESPACE.len() + 1 + name.len());
    out.push_str(NAMESPACE);
    out.push('_');
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label *value*: backslash, double-quote, and newline must be
/// backslash-escaped per the exposition format.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` text: backslash and newline only (no quote escaping).
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format a sample value. Prometheus text accepts Go-style floats;
/// non-finite values are spelled `+Inf` / `-Inf` / `NaN`.
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// Append one counter family (HELP, TYPE, and the `_total` sample).
pub fn write_counter(out: &mut String, name: &str, help: &str, value: u64) {
    let n = sanitize_metric_name(name);
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {n}_total {}", escape_help(help));
    }
    let _ = writeln!(out, "# TYPE {n}_total counter");
    let _ = writeln!(out, "{n}_total {value}");
}

/// Append one gauge family.
pub fn write_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let n = sanitize_metric_name(name);
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {n} {}", escape_help(help));
    }
    let _ = writeln!(out, "# TYPE {n} gauge");
    let _ = writeln!(out, "{n} {}", fmt_value(value));
}

/// Append one histogram family: cumulative `_bucket{le="…"}` series ending
/// with `le="+Inf"`, then `_sum` and `_count`. Buckets holding a traced
/// sample gain an OpenMetrics exemplar suffix —
/// `` # {trace_id="<16 hex>"} <value>`` — pointing the tail bucket at a
/// concrete flight-recorder trace.
pub fn write_histogram(out: &mut String, name: &str, help: &str, hist: &Histogram) {
    let n = sanitize_metric_name(name);
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {n} {}", escape_help(help));
    }
    let _ = writeln!(out, "# TYPE {n} histogram");
    let count = hist.count();
    // Both sides derive uppers from the same bucket math, so exact f64
    // equality is the correct join key.
    let exemplars = hist.exemplars();
    for (upper, cum) in hist.cumulative_buckets() {
        let _ = write!(out, "{n}_bucket{{le=\"{}\"}} {cum}", fmt_value(upper));
        if let Some(&(_, value, trace)) = exemplars.iter().find(|&&(u, _, _)| u == upper) {
            let _ = write!(out, " # {{trace_id=\"{trace:016x}\"}} {}", fmt_value(value));
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {count}");
    let _ = writeln!(out, "{n}_sum {}", fmt_value(hist.sum()));
    let _ = writeln!(out, "{n}_count {count}");
}

/// Render the whole registry: a `build_info` gauge with a `version` label,
/// then every registered family in name order, then span-duration
/// histograms as `…_span_<name>_seconds`.
pub fn render_registry(registry: &Registry, out: &mut String) {
    let info = sanitize_metric_name("build_info");
    let _ = writeln!(out, "# HELP {info} build metadata of the exposing process");
    let _ = writeln!(out, "# TYPE {info} gauge");
    let _ = writeln!(
        out,
        "{info}{{version=\"{}\"}} 1",
        escape_label_value(env!("CARGO_PKG_VERSION"))
    );
    registry.with_families(|families, spans| {
        for (name, family) in families {
            match &family.metric {
                MetricKind::Counter(c) => write_counter(out, name, family.help, c.get()),
                MetricKind::Gauge(g) => write_gauge(out, name, family.help, g.get()),
                MetricKind::Histogram(h) => write_histogram(out, name, family.help, h),
            }
        }
        for (name, hist) in spans {
            let metric = format!("span.{name}.seconds");
            write_histogram(
                out,
                &metric,
                "span duration aggregated from telemetry",
                hist,
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn legal_metric_name(s: &str) -> bool {
        let mut chars = s.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    #[test]
    fn sanitization_produces_legal_names() {
        for raw in [
            "train.episodes",
            "ppo.minibatch.kl",
            "weird name/with-stuff",
            "",
            "9starts.with.digit",
            "ünïcode",
        ] {
            let n = sanitize_metric_name(raw);
            assert!(legal_metric_name(&n), "{raw:?} -> {n:?}");
            assert!(n.starts_with("schedinspector_"));
        }
        assert_eq!(
            sanitize_metric_name("train.episodes"),
            "schedinspector_train_episodes"
        );
    }

    #[test]
    fn label_values_escape_quotes_backslashes_newlines() {
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
        assert_eq!(escape_label_value("plain"), "plain");
    }

    #[test]
    fn counter_and_gauge_families_are_well_formed() {
        let mut out = String::new();
        write_counter(&mut out, "train.episodes", "episodes completed", 42);
        write_gauge(&mut out, "ppo.kl", "help with \\ and \n inside", 0.5);
        let text = out;
        assert!(text.contains("# TYPE schedinspector_train_episodes_total counter\n"));
        assert!(text.contains("schedinspector_train_episodes_total 42\n"));
        assert!(text.contains("# TYPE schedinspector_ppo_kl gauge\n"));
        assert!(text.contains("schedinspector_ppo_kl 0.5\n"));
        // Help text newline/backslash are escaped, keeping one line per entry.
        assert!(text.contains(r"help with \\ and \n inside"));
        for line in text.lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let h = Histogram::detached();
        for v in [0.001, 0.002, 0.002, 0.5] {
            h.observe(v);
        }
        let mut out = String::new();
        write_histogram(&mut out, "lat", "", &h);
        let mut last_cum = 0u64;
        let mut last_le = f64::NEG_INFINITY;
        let mut saw_inf = false;
        for line in out.lines().filter(|l| l.contains("_bucket")) {
            let le_start = line.find("le=\"").unwrap() + 4;
            let le_end = line[le_start..].find('"').unwrap() + le_start;
            let le_raw = &line[le_start..le_end];
            let cum: u64 = line[le_end + 2..].trim().parse().unwrap();
            assert!(cum >= last_cum, "cumulative counts regressed: {line}");
            last_cum = cum;
            if le_raw == "+Inf" {
                saw_inf = true;
                assert_eq!(cum, 4, "+Inf bucket holds the total count");
            } else {
                let le: f64 = le_raw.parse().unwrap();
                assert!(le > last_le, "le bounds not increasing: {line}");
                last_le = le;
            }
        }
        assert!(saw_inf);
        assert!(out.contains("schedinspector_lat_count 4\n"));
        let sum_line = out
            .lines()
            .find(|l| l.starts_with("schedinspector_lat_sum"))
            .unwrap();
        let sum: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((sum - 0.505).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_carry_openmetrics_exemplars_for_traced_samples() {
        let h = Histogram::detached();
        h.observe(0.001);
        // ~2ms sample traced as 0xbeef (ticks at the default 1e9 scale).
        h.observe_ticks_exemplar(2_000_000, 0xbeef);
        let mut out = String::new();
        write_histogram(&mut out, "lat", "", &h);
        let ex_line = out
            .lines()
            .find(|l| l.contains("trace_id"))
            .expect("one bucket line carries an exemplar");
        assert!(
            ex_line.contains(r#" # {trace_id="000000000000beef"} "#),
            "{ex_line}"
        );
        // The exemplar value respects its bucket's le bound.
        let le_start = ex_line.find("le=\"").unwrap() + 4;
        let le_end = ex_line[le_start..].find('"').unwrap() + le_start;
        let le: f64 = ex_line[le_start..le_end].parse().unwrap();
        let value: f64 = ex_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value <= le, "exemplar value {value} exceeds le {le}");
        // Untraced buckets stay in the plain two-token format.
        assert!(out
            .lines()
            .filter(|l| l.contains("_bucket") && !l.contains("trace_id"))
            .all(|l| l.split_whitespace().count() == 2));
    }

    #[test]
    fn render_registry_contains_all_three_kinds_and_build_info() {
        let r = Registry::new();
        r.counter("c.one", "a counter").inc();
        r.gauge("g.one", "a gauge").set(2.5);
        r.histogram("h.one", "a histogram").observe(0.25);
        r.span_histogram("epoch").observe(1.5);
        let mut out = String::new();
        r.render(&mut out);
        assert!(out.contains("schedinspector_build_info{version="));
        assert!(out.contains("# TYPE schedinspector_c_one_total counter"));
        assert!(out.contains("# TYPE schedinspector_g_one gauge"));
        assert!(out.contains("# TYPE schedinspector_h_one histogram"));
        assert!(out.contains("# TYPE schedinspector_span_epoch_seconds histogram"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in out.lines() {
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            let value = parts.next().unwrap();
            assert!(parts.next().is_none(), "extra tokens: {line}");
            let bare = name.split('{').next().unwrap();
            assert!(legal_metric_name(bare), "illegal name in {line}");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "unparsable value in {line}"
            );
        }
    }

    #[test]
    fn exposition_round_trips_recorded_counts() {
        // proptest-style round trip: random-ish counter values survive
        // render → parse.
        let values: Vec<u64> = (0..50).map(|i| (i * 2654435761u64) % 1_000_003).collect();
        let r = Arc::new(Registry::new());
        let c = r.counter("rt.counter", "");
        for &v in &values {
            c.add(v);
        }
        let mut out = String::new();
        r.render(&mut out);
        let line = out
            .lines()
            .find(|l| l.starts_with("schedinspector_rt_counter_total"))
            .expect("counter rendered");
        let rendered: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert_eq!(rendered, values.iter().sum::<u64>());
    }
}
