//! The learned selector policy: an RLScheduler-style kernel network.
//!
//! A small MLP scores every waiting job (shared weights across queue
//! slots); a softmax over the scores yields a categorical distribution from
//! which the next job is drawn (training) or arg-maxed (deployment). This
//! is the "disruptive" alternative the SchedInspector paper positions
//! itself against (§6) and names as future work to *combine* with.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use simhpc::{PolicyContext, SchedulingPolicy};
use tinynn::loss::log_softmax;
use tinynn::{Activation, Mlp};
use workload::Job;

use crate::features::{SelectorNorm, JOB_FEATURES, MAX_SLOTS};

/// The trainable selector network: per-job features → scalar logit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectorNet {
    net: Mlp,
    /// Feature normalization.
    pub norm: SelectorNorm,
}

impl SelectorNet {
    /// A fresh kernel network (16/8 hidden units, like the inspector's but
    /// smaller since it scores one job at a time).
    pub fn new(norm: SelectorNorm, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(
            &[JOB_FEATURES, 16, 8, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        SelectorNet { net, norm }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.net.param_count()
    }

    /// Logit for one job.
    pub fn logit(&self, job: &Job, ctx: &PolicyContext) -> f32 {
        let mut buf = Vec::with_capacity(JOB_FEATURES);
        self.norm.job_features(job, ctx, &mut buf);
        self.net.forward(&buf)[0]
    }

    /// Logits for the first [`MAX_SLOTS`] queue entries (`queue` holds
    /// indices into `jobs`, as in [`SchedulingPolicy::select`]).
    pub fn logits(&self, queue: &[usize], jobs: &[Job], ctx: &PolicyContext) -> Vec<f32> {
        let n = queue.len().min(MAX_SLOTS);
        let mut buf = Vec::with_capacity(JOB_FEATURES);
        (0..n)
            .map(|i| {
                buf.clear();
                self.norm.job_features(&jobs[queue[i]], ctx, &mut buf);
                self.net.forward(&buf)[0]
            })
            .collect()
    }

    /// Mutable network access for the trainer.
    pub(crate) fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Read-only network access.
    pub fn net(&self) -> &Mlp {
        &self.net
    }
}

/// One recorded selection decision.
#[derive(Debug, Clone, PartialEq)]
pub struct SelStep {
    /// Per-slot feature matrix, row-major `[n_slots × JOB_FEATURES]`.
    pub feats: Vec<f32>,
    /// Number of candidate slots at this decision.
    pub n_slots: usize,
    /// Chosen slot.
    pub action: usize,
    /// Log-probability of the choice under the behavior policy.
    pub logp: f32,
}

/// A live selector driving the simulator, optionally recording decisions.
pub struct SelectorPolicy<'a> {
    net: &'a SelectorNet,
    stochastic: bool,
    rng: StdRng,
    /// Recorded decisions (drained by the trainer after each episode).
    pub steps: Vec<SelStep>,
}

impl<'a> SelectorPolicy<'a> {
    /// A stochastic (training) selector.
    pub fn stochastic(net: &'a SelectorNet, seed: u64) -> Self {
        SelectorPolicy {
            net,
            stochastic: true,
            rng: StdRng::seed_from_u64(seed),
            steps: Vec::new(),
        }
    }

    /// A greedy (deployment) selector.
    pub fn greedy(net: &'a SelectorNet) -> Self {
        SelectorPolicy {
            net,
            stochastic: false,
            rng: StdRng::seed_from_u64(0),
            steps: Vec::new(),
        }
    }
}

impl SchedulingPolicy for SelectorPolicy<'_> {
    fn score(&mut self, job: &Job, ctx: &PolicyContext) -> f64 {
        // Backfill candidate ordering: higher logit = higher priority.
        -self.net.logit(job, ctx) as f64
    }

    fn select(&mut self, queue: &[usize], jobs: &[Job], ctx: &PolicyContext) -> usize {
        let logits = self.net.logits(queue, jobs, ctx);
        let lp = log_softmax(&logits);
        let action = if self.stochastic {
            let u: f32 = self.rng.random();
            let mut acc = 0.0;
            let mut pick = lp.len() - 1;
            for (i, l) in lp.iter().enumerate() {
                acc += l.exp();
                if u < acc {
                    pick = i;
                    break;
                }
            }
            pick
        } else {
            lp.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        let n = logits.len();
        let mut feats = Vec::with_capacity(n * JOB_FEATURES);
        for &jidx in queue.iter().take(n) {
            self.net.norm.job_features(&jobs[jidx], ctx, &mut feats);
        }
        self.steps.push(SelStep {
            feats,
            n_slots: n,
            action,
            logp: lp[action],
        });
        action
    }

    fn name(&self) -> &str {
        "RLScheduler"
    }
}

/// A frozen trained selector usable as a *base policy* — including under a
/// SchedInspector, the combination the paper names as future work (§7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedScheduler {
    net: SelectorNet,
}

impl TrainedScheduler {
    /// Freeze a trained network.
    pub fn new(net: SelectorNet) -> Self {
        TrainedScheduler { net }
    }

    /// The underlying network.
    pub fn net(&self) -> &SelectorNet {
        &self.net
    }
}

impl SchedulingPolicy for TrainedScheduler {
    fn score(&mut self, job: &Job, ctx: &PolicyContext) -> f64 {
        -self.net.logit(job, ctx) as f64
    }

    fn select(&mut self, queue: &[usize], jobs: &[Job], ctx: &PolicyContext) -> usize {
        let logits = self.net.logits(queue, jobs, ctx);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &str {
        "RLScheduler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SelectorNet, Vec<Job>, Vec<usize>, PolicyContext) {
        let net = SelectorNet::new(SelectorNorm::new(32, 7_200.0), 5);
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                Job::new(
                    i + 1,
                    0.0,
                    100.0 * (i + 1) as f64,
                    200.0 * (i + 1) as f64,
                    1 + i as u32,
                )
            })
            .collect();
        let queue: Vec<usize> = (0..jobs.len()).collect();
        let ctx = PolicyContext {
            now: 500.0,
            total_procs: 32,
            free_procs: 16,
        };
        (net, jobs, queue, ctx)
    }

    #[test]
    fn greedy_picks_argmax_logit() {
        let (net, jobs, queue, ctx) = setup();
        let logits = net.logits(&queue, &jobs, &ctx);
        let best = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let mut p = SelectorPolicy::greedy(&net);
        assert_eq!(p.select(&queue, &jobs, &ctx), best);
        assert_eq!(p.steps.len(), 1);
        assert_eq!(p.steps[0].n_slots, 6);
        assert_eq!(p.steps[0].feats.len(), 6 * JOB_FEATURES);
    }

    #[test]
    fn stochastic_selection_matches_softmax_frequencies() {
        let (net, jobs, queue, ctx) = setup();
        let lp = log_softmax(&net.logits(&queue, &jobs, &ctx));
        let mut p = SelectorPolicy::stochastic(&net, 1);
        let n = 20_000;
        let mut counts = vec![0usize; queue.len()];
        for _ in 0..n {
            counts[p.select(&queue, &jobs, &ctx)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let freq = *c as f64 / n as f64;
            let prob = lp[i].exp() as f64;
            assert!(
                (freq - prob).abs() < 0.02,
                "slot {i}: freq {freq} vs prob {prob}"
            );
        }
    }

    #[test]
    fn queue_longer_than_window_is_cut() {
        let net = SelectorNet::new(SelectorNorm::new(8, 1_000.0), 2);
        let jobs: Vec<Job> = (0..(MAX_SLOTS as u64 + 10))
            .map(|i| Job::new(i + 1, 0.0, 60.0, 60.0, 1))
            .collect();
        let queue: Vec<usize> = (0..jobs.len()).collect();
        let ctx = PolicyContext {
            now: 0.0,
            total_procs: 8,
            free_procs: 8,
        };
        let mut p = SelectorPolicy::greedy(&net);
        let pick = p.select(&queue, &jobs, &ctx);
        assert!(pick < MAX_SLOTS);
        assert_eq!(p.steps[0].n_slots, MAX_SLOTS);
    }

    #[test]
    fn trained_scheduler_is_deterministic_and_matches_greedy() {
        let (net, jobs, queue, ctx) = setup();
        let mut frozen = TrainedScheduler::new(net.clone());
        let mut greedy = SelectorPolicy::greedy(&net);
        assert_eq!(
            frozen.select(&queue, &jobs, &ctx),
            greedy.select(&queue, &jobs, &ctx)
        );
        assert_eq!(
            frozen.select(&queue, &jobs, &ctx),
            frozen.select(&queue, &jobs, &ctx)
        );
    }
}
