//! PPO training for the learned selector.
//!
//! Mirrors the inspector's training loop: batches of job sequences, sparse
//! terminal percentage reward (here against an SJF reference run of the
//! same sequence), clipped-surrogate policy updates. The categorical
//! distribution ranges over queue slots instead of {accept, reject}, with
//! the kernel network shared across slots.

use obs::Telemetry;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rlcore::normalize;
use serde::{Deserialize, Serialize};
use simhpc::{Metric, SimConfig, Simulator};
use tinynn::loss::{log_softmax, softmax};
use tinynn::{Adam, Mlp, Tape};
use workload::JobTrace;

use crate::features::{SelectorNorm, JOB_FEATURES};
use crate::policy::{SelStep, SelectorNet, SelectorPolicy, TrainedScheduler};

/// One selector training episode: recorded decisions plus terminal reward.
#[derive(Debug, Clone)]
struct SelTrajectory {
    steps: Vec<SelStep>,
    reward: f32,
}

/// Selector training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectorConfig {
    /// Metric to optimize (reward is the percentage improvement over SJF).
    pub metric: Metric,
    /// Trajectories per epoch.
    pub batch_size: usize,
    /// Jobs per trajectory.
    pub seq_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// PPO clip radius.
    pub clip: f32,
    /// Learning rate.
    pub lr: f32,
    /// Policy passes per batch.
    pub train_iters: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            metric: Metric::Bsld,
            batch_size: 32,
            seq_len: 128,
            epochs: 30,
            clip: 0.2,
            lr: 1e-3,
            train_iters: 8,
            seed: 0,
        }
    }
}

/// Per-epoch diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectorEpoch {
    /// Epoch index.
    pub epoch: usize,
    /// Mean percentage reward vs. the SJF reference (positive = the
    /// learned selector beat SJF on the training batch).
    pub mean_reward: f32,
}

/// Trains a [`TrainedScheduler`] on a trace.
pub struct SelectorTrainer {
    config: SelectorConfig,
    net: SelectorNet,
    value: Mlp,
    pi_opt: Adam,
    vf_opt: Adam,
    trace: JobTrace,
    sim: Simulator,
    rng: StdRng,
    telemetry: Telemetry,
}

/// Value-function input: aggregate queue statistics.
const VALUE_FEATURES: usize = 4;

fn value_input(step: &SelStep) -> [f32; VALUE_FEATURES] {
    // Means over the slot features [wait, est, res] plus queue pressure.
    let n = step.n_slots.max(1);
    let mut sums = [0.0f32; 3];
    for s in 0..step.n_slots {
        for (k, sum) in sums.iter_mut().enumerate() {
            *sum += step.feats[s * JOB_FEATURES + k];
        }
    }
    [
        sums[0] / n as f32,
        sums[1] / n as f32,
        sums[2] / n as f32,
        (step.n_slots as f32 / 32.0).min(1.0),
    ]
}

impl SelectorTrainer {
    /// A trainer over `trace` (use the train split).
    pub fn new(trace: JobTrace, config: SelectorConfig) -> Self {
        let stats = trace.stats();
        let norm = SelectorNorm::new(trace.procs, stats.max_estimate);
        let net = SelectorNet::new(norm, config.seed);
        let mut vrng = StdRng::seed_from_u64(config.seed ^ 0x5E1);
        let value = Mlp::new(
            &[VALUE_FEATURES, 16, 8, 1],
            tinynn::Activation::Tanh,
            tinynn::Activation::Identity,
            &mut vrng,
        );
        let pi_opt = Adam::new(config.lr, net.param_count());
        let vf_opt = Adam::new(config.lr, value.param_count());
        let sim = Simulator::new(trace.procs, SimConfig::default());
        let rng = StdRng::seed_from_u64(config.seed ^ 0x5E1EC7);
        SelectorTrainer {
            config,
            net,
            value,
            pi_opt,
            vf_opt,
            trace,
            sim,
            rng,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; each epoch then emits an `epoch` span, a
    /// `selector.mean_reward` gauge, `selector.episodes` counts, and a
    /// `selector` heartbeat (epoch index + episodes/s).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The current network (e.g. for freezing mid-training).
    pub fn network(&self) -> &SelectorNet {
        &self.net
    }

    /// Freeze the current policy into a deployable scheduler.
    pub fn scheduler(&self) -> TrainedScheduler {
        TrainedScheduler::new(self.net.clone())
    }

    fn rollout(&mut self, epoch: usize) -> Vec<SelTrajectory> {
        let n = self.config.batch_size;
        let max_start = self.trace.len().saturating_sub(self.config.seq_len);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let start = if max_start == 0 {
                0
            } else {
                self.rng.random_range(0..=max_start)
            };
            let jobs = self.trace.sequence(start, self.config.seq_len);
            // Reference: SJF on the identical sequence.
            let ref_metric = self
                .sim
                .run(&jobs, &mut policies::Sjf)
                .metric(self.config.metric);
            let seed = self
                .config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((epoch * n + i) as u64);
            let mut policy = SelectorPolicy::stochastic(&self.net, seed);
            let result = self.sim.run(&jobs, &mut policy);
            let rl_metric = result.metric(self.config.metric);
            let reward = if ref_metric.abs() < 1e-12 {
                0.0
            } else {
                ((ref_metric - rl_metric) / ref_metric) as f32
            };
            out.push(SelTrajectory {
                steps: std::mem::take(&mut policy.steps),
                reward,
            });
        }
        out
    }

    /// One training epoch: rollouts + PPO update.
    pub fn train_epoch(&mut self, epoch: usize) -> SelectorEpoch {
        let epoch_span = obs::span!(self.telemetry, "epoch");
        let trajectories = self.rollout(epoch);
        let n_steps: usize = trajectories.iter().map(|t| t.steps.len()).sum();
        if n_steps == 0 {
            return SelectorEpoch {
                epoch,
                mean_reward: 0.0,
            };
        }

        // Advantages: terminal reward minus the critic baseline, normalized.
        let mut advantages = Vec::with_capacity(n_steps);
        for t in &trajectories {
            for s in &t.steps {
                advantages.push(t.reward - self.value.forward(&value_input(s))[0]);
            }
        }
        normalize(&mut advantages);

        // Policy: PPO clipped surrogate over the categorical-over-slots
        // distribution; gradients flow through the shared kernel net.
        let mut tape = Tape::default();
        for _ in 0..self.config.train_iters {
            self.net.net_mut().zero_grads();
            let mut flat = 0usize;
            for t in &trajectories {
                for s in &t.steps {
                    let a = advantages[flat];
                    flat += 1;
                    let logits: Vec<f32> = (0..s.n_slots)
                        .map(|j| {
                            self.net
                                .net()
                                .forward(&s.feats[j * JOB_FEATURES..(j + 1) * JOB_FEATURES])[0]
                        })
                        .collect();
                    let lp = log_softmax(&logits);
                    let p = softmax(&logits);
                    let ratio = (lp[s.action] - s.logp).exp();
                    let clipped = (a >= 0.0 && ratio > 1.0 + self.config.clip)
                        || (a < 0.0 && ratio < 1.0 - self.config.clip);
                    if clipped {
                        continue;
                    }
                    let d_surr = ratio * a;
                    for (j, &pj) in p.iter().enumerate().take(s.n_slots) {
                        let onehot = if j == s.action { 1.0 } else { 0.0 };
                        let grad = -d_surr * (onehot - pj);
                        if grad == 0.0 {
                            continue;
                        }
                        self.net.net().forward_train(
                            &s.feats[j * JOB_FEATURES..(j + 1) * JOB_FEATURES],
                            &mut tape,
                        );
                        self.net.net_mut().backward(&tape, &[grad]);
                    }
                }
            }
            self.pi_opt.step(self.net.net_mut(), 1.0 / n_steps as f32);
        }

        // Critic regression to the terminal rewards.
        for _ in 0..self.config.train_iters {
            self.value.zero_grads();
            for t in &trajectories {
                for s in &t.steps {
                    let v = self.value.forward_train(&value_input(s), &mut tape)[0];
                    self.value.backward(&tape, &[2.0 * (v - t.reward)]);
                }
            }
            self.vf_opt.step(&mut self.value, 1.0 / n_steps as f32);
        }

        let mean_reward =
            trajectories.iter().map(|t| t.reward).sum::<f32>() / trajectories.len() as f32;
        if self.telemetry.is_enabled() {
            self.telemetry
                .count("selector.episodes", trajectories.len() as u64);
            self.telemetry
                .gauge("selector.mean_reward", mean_reward as f64);
            let epoch_secs = epoch_span.elapsed();
            if epoch_secs > 0.0 {
                self.telemetry.heartbeat(
                    "selector",
                    epoch as u64,
                    trajectories.len() as f64 / epoch_secs,
                );
            }
        }
        SelectorEpoch { epoch, mean_reward }
    }

    /// Train for the configured number of epochs; returns per-epoch mean
    /// rewards (the training curve).
    pub fn train(&mut self) -> Vec<SelectorEpoch> {
        (0..self.config.epochs)
            .map(|e| self.train_epoch(e))
            .collect()
    }

    /// Evaluate the current greedy policy vs. SJF over `n` sequences.
    pub fn evaluate(&self, n: usize, seq_len: usize, seed: u64) -> (f64, f64) {
        let mut sampler = workload::SequenceSampler::new(self.trace.clone(), seq_len, seed);
        let mut rl_sum = 0.0;
        let mut ref_sum = 0.0;
        for _ in 0..n {
            let (_, jobs) = sampler.sample();
            let mut greedy = SelectorPolicy::greedy(&self.net);
            rl_sum += self.sim.run(&jobs, &mut greedy).metric(self.config.metric);
            ref_sum += self
                .sim
                .run(&jobs, &mut policies::Sjf)
                .metric(self.config.metric);
        }
        (rl_sum / n as f64, ref_sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Job;

    fn trace() -> JobTrace {
        let jobs = (0..500u64)
            .map(|i| {
                let (rt, procs) = match i % 4 {
                    0 => (2000.0, 5),
                    1 => (200.0, 1),
                    2 => (900.0, 2),
                    _ => (100.0, 1),
                };
                Job::new(i + 1, i as f64 * 120.0, rt, rt * 1.5, procs)
            })
            .collect();
        JobTrace::new("sel", 8, jobs).unwrap()
    }

    #[test]
    fn epoch_trains_without_nan() {
        let config = SelectorConfig {
            batch_size: 4,
            seq_len: 24,
            epochs: 1,
            ..Default::default()
        };
        let mut t = SelectorTrainer::new(trace(), config);
        let e = t.train_epoch(0);
        assert!(e.mean_reward.is_finite());
        // Network still produces finite logits after the update.
        let (rl, rf) = t.evaluate(3, 24, 9);
        assert!(rl.is_finite() && rf.is_finite());
    }

    #[test]
    fn telemetry_emits_epoch_span_heartbeat_and_gauges() {
        let config = SelectorConfig {
            batch_size: 4,
            seq_len: 24,
            epochs: 1,
            ..Default::default()
        };
        let (telemetry, sink) = obs::Telemetry::in_memory();
        let mut t = SelectorTrainer::new(trace(), config).with_telemetry(telemetry);
        let e = t.train_epoch(0);
        let pairs = sink.check_span_pairing().expect("spans pair");
        assert_eq!(pairs.get("epoch"), Some(&1));
        assert_eq!(sink.counter_total("selector.episodes"), 4);
        assert_eq!(
            sink.gauge_values("selector.mean_reward"),
            vec![e.mean_reward as f64]
        );
        let heartbeats = sink
            .events()
            .into_iter()
            .filter(|ev| {
                matches!(
                    ev,
                    obs::Event::Heartbeat {
                        name: "selector",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(heartbeats, 1);
    }

    #[test]
    fn training_is_deterministic() {
        let config = SelectorConfig {
            batch_size: 4,
            seq_len: 24,
            epochs: 2,
            ..Default::default()
        };
        let run = || {
            let mut t = SelectorTrainer::new(trace(), config);
            t.train().iter().map(|e| e.mean_reward).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn value_input_is_bounded() {
        let step = SelStep {
            feats: vec![0.5; 3 * JOB_FEATURES],
            n_slots: 3,
            action: 1,
            logp: -1.0,
        };
        let v = value_input(&step);
        assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
    }
}
