//! Per-job features for the learned selector.

use serde::{Deserialize, Serialize};
use simhpc::PolicyContext;
use workload::Job;

/// Feature count per queue slot.
pub const JOB_FEATURES: usize = 5;

/// Maximum queue slots the selector can choose among (RLScheduler's
/// `MAX_QUEUE_SIZE` cut-off; jobs beyond the window wait for a later
/// scheduling point).
pub const MAX_SLOTS: usize = 32;

/// Normalization constants for selector features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectorNorm {
    /// Cap for waiting times (seconds).
    pub max_wait: f64,
    /// Cap for runtime estimates (seconds).
    pub max_estimate: f64,
    /// Machine processors.
    pub total_procs: u32,
}

impl SelectorNorm {
    /// Defaults for a machine of `total_procs` and the given max estimate.
    pub fn new(total_procs: u32, max_estimate: f64) -> Self {
        SelectorNorm {
            max_wait: 86_400.0,
            max_estimate: max_estimate.max(1.0),
            total_procs,
        }
    }

    /// Write one job's features into `out` (exactly [`JOB_FEATURES`]
    /// values): wait, estimate, resources, whether it fits the free
    /// processors, and the overall cluster availability.
    pub fn job_features(&self, job: &Job, ctx: &PolicyContext, out: &mut Vec<f32>) {
        let wait = ((ctx.now - job.submit) / self.max_wait).clamp(0.0, 1.0) as f32;
        out.push(wait);
        out.push((job.estimate / self.max_estimate).clamp(0.0, 1.0) as f32);
        out.push((job.procs as f64 / self.total_procs as f64).clamp(0.0, 1.0) as f32);
        out.push(if job.procs <= ctx.free_procs {
            1.0
        } else {
            0.0
        });
        out.push((ctx.free_procs as f64 / self.total_procs as f64) as f32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_have_fixed_width_and_range() {
        let norm = SelectorNorm::new(64, 7_200.0);
        let ctx = PolicyContext {
            now: 1_000.0,
            total_procs: 64,
            free_procs: 32,
        };
        let job = Job::new(1, 400.0, 100.0, 3_600.0, 16);
        let mut out = Vec::new();
        norm.job_features(&job, &ctx, &mut out);
        assert_eq!(out.len(), JOB_FEATURES);
        assert!(out.iter().all(|x| (0.0..=1.0).contains(x)), "{out:?}");
        assert_eq!(out[3], 1.0, "16 procs fit in 32 free");
        assert_eq!(out[4], 0.5);
    }

    #[test]
    fn fits_flag_flips() {
        let norm = SelectorNorm::new(64, 7_200.0);
        let ctx = PolicyContext {
            now: 0.0,
            total_procs: 64,
            free_procs: 8,
        };
        let job = Job::new(1, 0.0, 100.0, 3_600.0, 16);
        let mut out = Vec::new();
        norm.job_features(&job, &ctx, &mut out);
        assert_eq!(out[3], 0.0, "16 procs do not fit in 8 free");
    }
}
