//! `rlsched` — an RLScheduler-style learned job selector.
//!
//! The SchedInspector paper positions itself against RL *schedulers* that
//! replace the base policy outright (RLScheduler, SC'20) and names
//! combining the two as future work (§7: "incorporate SchedInspector with
//! intelligent scheduling policies, such as RLScheduler"). This crate
//! provides that baseline: a kernel MLP scores every waiting job, a
//! softmax over the scores selects the next one, and PPO trains the
//! network against a percentage reward over an SJF reference.
//!
//! A trained selector freezes into a [`TrainedScheduler`] — an ordinary
//! [`simhpc::SchedulingPolicy`] — so a SchedInspector can be trained *on
//! top of it*, realizing the paper's future-work combination (see the
//! `ext_rlscheduler` experiment).

mod features;
mod policy;
mod trainer;

pub use features::{SelectorNorm, JOB_FEATURES, MAX_SLOTS};
pub use policy::{SelStep, SelectorNet, SelectorPolicy, TrainedScheduler};
pub use trainer::{SelectorConfig, SelectorEpoch, SelectorTrainer};
