//! Slurm multifactor priority plug-in (§4.5).
//!
//! Implements the paper's published priority formula
//!
//! ```text
//! Job_Priority = w_age · age_factor + w_fairshare · fairshare_factor
//!              + w_jattr · job_attribute_factor + w_partition · partition_factor
//! ```
//!
//! with all weights 1000 as in the paper. Factor construction follows §4.5:
//!
//! * `age_factor` — the job's waiting time normalized by 7 days (capped at 1);
//! * `fairshare_factor` — the "normal model" `2^(-usage/share)`, where the
//!   user's *assigned share* is derived from her actual CPU usage across the
//!   whole trace (exactly the paper's derivation) and her *usage* is the CPU
//!   time consumed so far in the simulation;
//! * `job_attribute_factor` — built from the requested execution time
//!   (shorter ⇒ larger factor), normalized by the trace's maximum estimate;
//! * `partition_factor` — each queue's share of total CPU usage across the
//!   trace, used as the queue priority.

use std::collections::HashMap;

use simhpc::{PolicyContext, SchedulingPolicy};
use workload::{Job, JobTrace};

const WEIGHT: f64 = 1000.0;
const AGE_NORM: f64 = 7.0 * 24.0 * 3600.0; // 7 days

/// Slurm-style multifactor priority policy with fairshare accounting.
#[derive(Debug, Clone)]
pub struct SlurmMultifactor {
    /// Assigned share per user (fraction of trace CPU usage).
    user_share: HashMap<u32, f64>,
    /// Queue priority per queue id (fraction of trace CPU usage).
    queue_priority: HashMap<u32, f64>,
    /// Normalizer for the job-attribute factor.
    max_estimate: f64,
    /// CPU-seconds consumed per user in the current simulation.
    usage: HashMap<u32, f64>,
    /// Total CPU-seconds consumed in the current simulation.
    total_usage: f64,
}

impl SlurmMultifactor {
    /// Derive shares and queue priorities from a trace (§4.5: "use a user's
    /// actual CPU usage as her assigned shares" and "count the CPU usages
    /// of each queue across the whole trace").
    pub fn from_trace(trace: &JobTrace) -> Self {
        let mut user: HashMap<u32, f64> = HashMap::new();
        let mut queue: HashMap<u32, f64> = HashMap::new();
        let mut total = 0.0;
        let mut max_estimate: f64 = 1.0;
        for j in &trace.jobs {
            let cpu = j.runtime * j.procs as f64;
            *user.entry(j.user).or_insert(0.0) += cpu;
            *queue.entry(j.queue).or_insert(0.0) += cpu;
            total += cpu;
            max_estimate = max_estimate.max(j.estimate);
        }
        if total > 0.0 {
            for v in user.values_mut() {
                *v /= total;
            }
            for v in queue.values_mut() {
                *v /= total;
            }
        }
        SlurmMultifactor {
            user_share: user,
            queue_priority: queue,
            max_estimate,
            usage: HashMap::new(),
            total_usage: 0.0,
        }
    }

    /// Reset the per-simulation fairshare accounting (call between
    /// independent sequences).
    pub fn reset_usage(&mut self) {
        self.usage.clear();
        self.total_usage = 0.0;
    }

    fn fairshare_factor(&self, user: u32) -> f64 {
        let share = self.user_share.get(&user).copied().unwrap_or(0.0);
        if share <= 0.0 {
            // Unknown user: neutral factor.
            return 0.5;
        }
        if self.total_usage <= 0.0 {
            return 1.0;
        }
        let used = self.usage.get(&user).copied().unwrap_or(0.0) / self.total_usage;
        // Slurm's "normal" fairshare damping: 2^(-usage/share).
        2f64.powf(-used / share)
    }

    /// The (positive) multifactor priority of a job; bigger runs first.
    pub fn priority(&self, job: &Job, now: f64) -> f64 {
        let age = ((now - job.submit) / AGE_NORM).clamp(0.0, 1.0);
        let fairshare = self.fairshare_factor(job.user);
        let jattr = 1.0 - (job.estimate / self.max_estimate).clamp(0.0, 1.0);
        let partition = self.queue_priority.get(&job.queue).copied().unwrap_or(0.0);
        WEIGHT * age + WEIGHT * fairshare + WEIGHT * jattr + WEIGHT * partition
    }
}

impl SchedulingPolicy for SlurmMultifactor {
    #[inline]
    fn score(&mut self, job: &Job, ctx: &PolicyContext) -> f64 {
        // The simulator selects the minimum score; Slurm runs the highest
        // priority first.
        -self.priority(job, ctx.now)
    }

    fn on_start(&mut self, job: &Job, _now: f64) {
        let cpu = job.runtime * job.procs as f64;
        *self.usage.entry(job.user).or_insert(0.0) += cpu;
        self.total_usage += cpu;
    }

    fn name(&self) -> &str {
        "Slurm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> JobTrace {
        let mut jobs = Vec::new();
        // User 0 is a heavy user (share ~0.8), user 1 light (share ~0.2).
        for i in 0..8 {
            jobs.push(Job {
                user: 0,
                queue: 0,
                ..Job::new(i + 1, i as f64, 100.0, 200.0, 4)
            });
        }
        for i in 8..10 {
            jobs.push(Job {
                user: 1,
                queue: 1,
                ..Job::new(i + 1, i as f64, 100.0, 200.0, 4)
            });
        }
        JobTrace::new("t", 16, jobs).unwrap()
    }

    #[test]
    fn shares_sum_to_one() {
        let p = SlurmMultifactor::from_trace(&trace());
        let s: f64 = p.user_share.values().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((p.user_share[&0] - 0.8).abs() < 1e-12);
        assert!((p.queue_priority[&1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn age_increases_priority() {
        let p = SlurmMultifactor::from_trace(&trace());
        let j = Job::new(1, 0.0, 100.0, 200.0, 4);
        assert!(p.priority(&j, 86_400.0) > p.priority(&j, 0.0));
    }

    #[test]
    fn fairshare_penalizes_over_consumers() {
        let mut p = SlurmMultifactor::from_trace(&trace());
        let heavy = Job {
            user: 0,
            ..Job::new(1, 0.0, 100.0, 200.0, 4)
        };
        let light = Job {
            user: 1,
            ..Job::new(2, 0.0, 100.0, 200.0, 4)
        };
        // User 1 consumes everything so far: her factor drops.
        p.on_start(
            &Job {
                user: 1,
                ..Job::new(3, 0.0, 1000.0, 1000.0, 8)
            },
            0.0,
        );
        assert!(
            p.fairshare_factor(1) < p.fairshare_factor(0),
            "over-consumer must rank below an idle user"
        );
        assert!(p.priority(&heavy, 0.0) > p.priority(&light, 0.0));
    }

    #[test]
    fn shorter_jobs_get_higher_attribute_factor() {
        let p = SlurmMultifactor::from_trace(&trace());
        let short = Job {
            user: 0,
            queue: 0,
            ..Job::new(1, 0.0, 50.0, 60.0, 4)
        };
        let long = Job {
            user: 0,
            queue: 0,
            ..Job::new(2, 0.0, 190.0, 200.0, 4)
        };
        assert!(p.priority(&short, 0.0) > p.priority(&long, 0.0));
    }

    #[test]
    fn reset_usage_clears_accounting() {
        let mut p = SlurmMultifactor::from_trace(&trace());
        p.on_start(&Job::new(1, 0.0, 100.0, 200.0, 4), 0.0);
        assert!(p.total_usage > 0.0);
        p.reset_usage();
        assert_eq!(p.total_usage, 0.0);
        assert!(p.usage.is_empty());
    }

    #[test]
    fn score_is_negated_priority() {
        let mut p = SlurmMultifactor::from_trace(&trace());
        let j = Job::new(1, 0.0, 100.0, 200.0, 4);
        let ctx = PolicyContext {
            now: 500.0,
            total_procs: 16,
            free_procs: 16,
        };
        let pri = p.priority(&j, 500.0);
        assert_eq!(p.score(&j, &ctx), -pri);
    }
}
