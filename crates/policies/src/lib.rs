//! Base batch-job scheduling policies (the paper's Table 3, plus the Slurm
//! multifactor policy of §4.5).
//!
//! Every policy implements [`simhpc::SchedulingPolicy`]: a priority
//! heuristic scored per waiting job, lowest score scheduled first.
//!
//! ```
//! use policies::{PolicyKind, Sjf};
//! use simhpc::{SimConfig, Simulator};
//! use workload::Job;
//!
//! let jobs = vec![Job::new(1, 0.0, 60.0, 60.0, 1)];
//! let sim = Simulator::new(4, SimConfig::default());
//! let result = sim.run(&jobs, &mut Sjf);
//! assert_eq!(result.bsld(), 1.0);
//!
//! // Policies can also be built by name:
//! let mut f1 = "F1".parse::<PolicyKind>().unwrap().build();
//! assert_eq!(f1.name(), "F1");
//! ```

mod f1;
mod registry;
mod simple;
mod slurm;

pub use f1::F1;
pub use registry::PolicyKind;
pub use simple::{Fcfs, Lcfs, Saf, Sjf, Srf};
pub use slurm::SlurmMultifactor;
