//! The single- and two-attribute heuristics of Table 3:
//! FCFS, LCFS, SJF, SAF, SRF.

use simhpc::{PolicyContext, SchedulingPolicy};
use workload::Job;

/// First Come First Served — priority `max(wait_j)`, i.e. smallest submit
/// time first.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl SchedulingPolicy for Fcfs {
    #[inline]
    fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
        job.submit
    }
    fn name(&self) -> &str {
        "FCFS"
    }
}

/// Last Come First Served — priority `min(wait_j)`, i.e. newest job first.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lcfs;

impl SchedulingPolicy for Lcfs {
    #[inline]
    fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
        -job.submit
    }
    fn name(&self) -> &str {
        "LCFS"
    }
}

/// Shortest Job First — priority `min(est_j)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sjf;

impl SchedulingPolicy for Sjf {
    #[inline]
    fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
        job.estimate
    }
    fn name(&self) -> &str {
        "SJF"
    }
}

/// Smallest estimated Area First — priority `min(est_j · res_j)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Saf;

impl SchedulingPolicy for Saf {
    #[inline]
    fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
        job.estimate * job.procs as f64
    }
    fn name(&self) -> &str {
        "SAF"
    }
}

/// Smallest estimated Ratio First — priority `min(est_j / res_j)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Srf;

impl SchedulingPolicy for Srf {
    #[inline]
    fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
        job.estimate / job.procs as f64
    }
    fn name(&self) -> &str {
        "SRF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> PolicyContext {
        PolicyContext {
            now: 1000.0,
            total_procs: 128,
            free_procs: 128,
        }
    }

    fn job(submit: f64, estimate: f64, procs: u32) -> Job {
        Job::new(1, submit, estimate, estimate, procs)
    }

    #[test]
    fn fcfs_orders_by_submit() {
        let mut p = Fcfs;
        assert!(p.score(&job(10.0, 5.0, 1), &ctx()) < p.score(&job(20.0, 1.0, 1), &ctx()));
    }

    #[test]
    fn lcfs_orders_by_negative_submit() {
        let mut p = Lcfs;
        assert!(p.score(&job(20.0, 5.0, 1), &ctx()) < p.score(&job(10.0, 1.0, 1), &ctx()));
    }

    #[test]
    fn sjf_orders_by_estimate() {
        let mut p = Sjf;
        assert!(p.score(&job(0.0, 10.0, 9), &ctx()) < p.score(&job(0.0, 20.0, 1), &ctx()));
    }

    #[test]
    fn saf_orders_by_area() {
        let mut p = Saf;
        // 10*4 = 40 vs 30*2 = 60.
        assert!(p.score(&job(0.0, 10.0, 4), &ctx()) < p.score(&job(0.0, 30.0, 2), &ctx()));
    }

    #[test]
    fn srf_orders_by_ratio() {
        let mut p = Srf;
        // 10/4 = 2.5 vs 30/16 = 1.875 — the second wins.
        assert!(p.score(&job(0.0, 30.0, 16), &ctx()) < p.score(&job(0.0, 10.0, 4), &ctx()));
    }
}
