//! The F1 policy of Carastan-Santos & de Camargo (SC'17) — the paper's
//! state-of-the-art heuristic baseline.

use simhpc::{PolicyContext, SchedulingPolicy};
use workload::Job;

/// F1 — priority `min(log10(est_j) · res_j + 870 · log10(s_j))`.
///
/// A machine-learned non-linear combination of job features fitted to
/// minimize average bounded slowdown (Table 3). `s_j` is the job's submit
/// time *as an absolute archive timestamp*: in the Parallel Workloads
/// Archive logs the fit was made against, submit times are large (~10⁷ s),
/// so `870·log10(s_j)` is a slowly-growing age term, not an FCFS override.
/// Our sequences are rebased to t = 0, so the same epoch offset is added
/// back before the log to preserve the fitted balance between the terms.
#[derive(Debug, Clone, Copy, Default)]
pub struct F1;

/// Absolute-time offset standing in for the archive epoch (≈ 4 months).
pub const F1_EPOCH_OFFSET: f64 = 1.0e7;

impl SchedulingPolicy for F1 {
    #[inline]
    fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
        let est = job.estimate.max(1.0);
        let submit = (job.submit + F1_EPOCH_OFFSET).max(1.0);
        est.log10() * job.procs as f64 + 870.0 * submit.log10()
    }
    fn name(&self) -> &str {
        "F1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> PolicyContext {
        PolicyContext {
            now: 0.0,
            total_procs: 128,
            free_procs: 128,
        }
    }

    #[test]
    fn prefers_small_short_jobs_with_equal_submit() {
        let mut p = F1;
        let small = Job::new(1, 100.0, 60.0, 60.0, 1);
        let big = Job::new(2, 100.0, 36000.0, 36000.0, 64);
        assert!(p.score(&small, &ctx()) < p.score(&big, &ctx()));
    }

    #[test]
    fn submit_time_dominates_like_weighted_fcfs() {
        // The 870 weight makes submit order dominate for similar jobs.
        let mut p = F1;
        let early = Job::new(1, 100.0, 3600.0, 3600.0, 8);
        let late = Job::new(2, 10_000.0, 3600.0, 3600.0, 8);
        assert!(p.score(&early, &ctx()) < p.score(&late, &ctx()));
    }

    #[test]
    fn zero_submit_is_guarded() {
        let mut p = F1;
        let j = Job::new(1, 0.0, 60.0, 60.0, 1);
        assert!(p.score(&j, &ctx()).is_finite());
    }
}
