//! Name-based construction of base policies (for CLIs and experiments).

use simhpc::SchedulingPolicy;

use crate::f1::F1;
use crate::simple::{Fcfs, Lcfs, Saf, Sjf, Srf};

/// The stateless Table 3 policies by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// First Come First Served.
    Fcfs,
    /// Last Come First Served.
    Lcfs,
    /// Shortest Job First.
    Sjf,
    /// Smallest estimated Area First.
    Saf,
    /// Smallest estimated Ratio First.
    Srf,
    /// Carastan-Santos & de Camargo's F1.
    F1,
}

impl PolicyKind {
    /// All Table 3 kinds in paper order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Fcfs,
        PolicyKind::Lcfs,
        PolicyKind::Sjf,
        PolicyKind::Saf,
        PolicyKind::Srf,
        PolicyKind::F1,
    ];

    /// Paper abbreviation.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::Lcfs => "LCFS",
            PolicyKind::Sjf => "SJF",
            PolicyKind::Saf => "SAF",
            PolicyKind::Srf => "SRF",
            PolicyKind::F1 => "F1",
        }
    }

    /// The priority heuristic as printed in Table 3.
    pub fn priority_formula(&self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "max(wait_j)",
            PolicyKind::Lcfs => "min(wait_j)",
            PolicyKind::Sjf => "min(est_j)",
            PolicyKind::Saf => "min(est_j * res_j)",
            PolicyKind::Srf => "min(est_j / res_j)",
            PolicyKind::F1 => "min(log10(est_j)*res_j + 870*log10(s_j))",
        }
    }

    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn SchedulingPolicy + Send> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs),
            PolicyKind::Lcfs => Box::new(Lcfs),
            PolicyKind::Sjf => Box::new(Sjf),
            PolicyKind::Saf => Box::new(Saf),
            PolicyKind::Srf => Box::new(Srf),
            PolicyKind::F1 => Box::new(F1),
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                format!("unknown policy {s:?} (expected one of FCFS/LCFS/SJF/SAF/SRF/F1)")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simhpc::PolicyContext;
    use workload::Job;

    #[test]
    fn names_roundtrip() {
        for kind in PolicyKind::ALL {
            let parsed: PolicyKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        assert!("nope".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn built_policies_score() {
        let ctx = PolicyContext {
            now: 10.0,
            total_procs: 64,
            free_procs: 64,
        };
        let j = Job::new(1, 5.0, 100.0, 200.0, 4);
        for kind in PolicyKind::ALL {
            let mut p = kind.build();
            assert!(p.score(&j, &ctx).is_finite(), "{}", kind.name());
        }
    }
}
