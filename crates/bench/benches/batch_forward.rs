//! Fused batched inference vs per-row scalar forwards — the tinynn-level
//! half of the sharded-serving optimisation. Three variants over the
//! paper's policy-net shape at serving batch sizes:
//!
//! * `scalar_rows`   — N independent `forward_scratch` calls (the old
//!   engine inner loop);
//! * `fused_batch`   — one `forward_batch` over a packed row matrix
//!   (cache-blocked, 8-lane unrolled dot products);
//! * `fused_int8`    — the same fused pass through the quantized net.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{RngExt, SeedableRng, StdRng};
use std::hint::black_box;
use tinynn::{Activation, BatchForwardScratch, ForwardScratch, Mlp, QuantScratch, QuantizedMlp};

/// The serving policy-net shape: paper features -> two logits.
const SIZES: &[usize] = &[38, 32, 16, 8, 2];

fn rows(dim: usize, n: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect())
        .collect()
}

fn bench_batch_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mlp = Mlp::new(SIZES, Activation::Relu, Activation::Identity, &mut rng);
    let quantized = QuantizedMlp::quantize(&mlp);
    let dim = mlp.input_dim();

    let mut group = c.benchmark_group("batch_forward");
    for batch in [1usize, 4, 16, 64] {
        let inputs = rows(dim, batch, &mut rng);

        group.bench_function(format!("scalar_rows_{batch}"), |b| {
            let mut scratch = ForwardScratch::default();
            b.iter(|| {
                let mut acc = 0.0f32;
                for x in &inputs {
                    let out = mlp.forward_scratch(black_box(x), &mut scratch);
                    acc += out[0];
                }
                black_box(acc)
            })
        });

        group.bench_function(format!("fused_batch_{batch}"), |b| {
            let mut scratch = BatchForwardScratch::default();
            b.iter(|| {
                scratch.clear(dim);
                for x in &inputs {
                    scratch.push_row(black_box(x));
                }
                let out = mlp.forward_batch(&mut scratch);
                black_box(out[0])
            })
        });

        group.bench_function(format!("fused_int8_{batch}"), |b| {
            let mut scratch = BatchForwardScratch::default();
            let mut qscratch = QuantScratch::default();
            b.iter(|| {
                scratch.clear(dim);
                for x in &inputs {
                    scratch.push_row(black_box(x));
                }
                let out = quantized.forward_batch(&mut scratch, &mut qscratch);
                black_box(out[0])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = fused;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_batch_forward
}
criterion_main!(fused);
