//! Criterion benches for the paper's figures: one bench (group) per
//! figure, measuring the experiment's core computation at miniature scale.

use bench::{bench_inspector, bench_sequence, bench_simulator, bench_trainer, sjf_factory};
use criterion::{criterion_group, criterion_main, Criterion};
use inspector::{
    analysis, run_episode, EpisodeSpec, FeatureBuilder, FeatureMode, Normalizer, RewardKind,
};
use rlcore::BinaryPolicy;
use simhpc::Metric;
use std::hint::black_box;

/// Figure 4: one PPO training epoch (rollouts + update).
fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_training_epoch", |b| {
        let mut trainer = bench_trainer();
        let mut epoch = 0;
        b.iter(|| {
            epoch += 1;
            black_box(trainer.train_epoch(epoch))
        })
    });
}

/// Figure 5: feature building in each mode.
fn bench_fig5(c: &mut Criterion) {
    use simhpc::{Observation, QueueEntry};
    use workload::Job;
    let obs = Observation {
        now: 1_000.0,
        job: Job::new(1, 0.0, 600.0, 1200.0, 8),
        wait: 1_000.0,
        rejections: 1,
        max_rejections: 72,
        free_procs: 30,
        total_procs: 128,
        runnable: true,
        backfill_enabled: true,
        backfillable: 3,
        queue: (0..24)
            .map(|i| QueueEntry {
                id: i,
                wait: i as f64,
                estimate: 600.0 + i as f64,
                procs: 1 + (i % 8) as u32,
            })
            .collect(),
    };
    let mut group = c.benchmark_group("fig5_feature_building");
    for (mode, name) in [
        (FeatureMode::Manual, "manual"),
        (FeatureMode::Compacted, "compacted"),
        (FeatureMode::Native, "native"),
    ] {
        let fb = FeatureBuilder {
            mode,
            metric: Metric::Bsld,
            norm: Normalizer::new(128, 86_400.0),
        };
        group.bench_function(name, |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                fb.build(black_box(&obs), &mut buf);
                black_box(buf.len())
            })
        });
    }
    group.finish();
}

/// Figure 6: reward computation for each kind.
fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_rewards");
    for kind in [
        RewardKind::Native,
        RewardKind::WinLoss,
        RewardKind::Percentage,
    ] {
        group.bench_function(kind.name().replace('/', "_"), |b| {
            b.iter(|| black_box(kind.compute(black_box(160.2), black_box(135.6))))
        });
    }
    group.finish();
}

/// Figure 7 / Figure 9: one full training episode (base + inspected run).
fn bench_fig7_episode(c: &mut Criterion) {
    let jobs = bench_sequence();
    let sim = bench_simulator(false);
    let factory = sjf_factory();
    let fb = FeatureBuilder {
        mode: FeatureMode::Manual,
        metric: Metric::Bsld,
        norm: Normalizer::new(128, 432_000.0),
    };
    let policy = BinaryPolicy::new(fb.dim(), 3);
    c.bench_function("fig7_training_episode", |b| {
        b.iter(|| {
            black_box(run_episode(&EpisodeSpec {
                seed: 1,
                ..EpisodeSpec::new(&sim, black_box(&jobs), &factory, &policy, &fb)
            }))
        })
    });
}

/// Figure 8 / Figure 10: greedy evaluation of one held-out sequence.
fn bench_fig8_eval(c: &mut Criterion) {
    let jobs = bench_sequence();
    let sim = bench_simulator(false);
    let factory = sjf_factory();
    let inspector = bench_inspector();
    c.bench_function("fig8_eval_sequence", |b| {
        b.iter(|| {
            let mut p = factory();
            let mut hook = inspector.hook();
            black_box(sim.run_inspected(black_box(&jobs), p.as_mut(), &mut hook))
        })
    });
}

/// Figure 11: simulation with backfilling enabled vs disabled.
fn bench_fig11_backfill(c: &mut Criterion) {
    let jobs = bench_sequence();
    let mut group = c.benchmark_group("fig11_backfill");
    for (on, name) in [(false, "disabled"), (true, "enabled")] {
        let sim = bench_simulator(on);
        group.bench_function(name, |b| {
            b.iter(|| black_box(sim.run(black_box(&jobs), &mut policies::Sjf)))
        });
    }
    group.finish();
}

/// Figure 12: the Slurm multifactor policy's scoring path.
fn bench_fig12_slurm(c: &mut Criterion) {
    let trace = bench::bench_trace();
    let jobs = trace.sequence(100, 128);
    let sim = bench_simulator(true);
    let template = policies::SlurmMultifactor::from_trace(&trace);
    c.bench_function("fig12_slurm_multifactor", |b| {
        b.iter(|| {
            let mut p = template.clone();
            p.reset_usage();
            black_box(sim.run(black_box(&jobs), &mut p))
        })
    });
}

/// Figure 13: decision collection + CDF computation.
fn bench_fig13_analysis(c: &mut Criterion) {
    let jobs = bench_sequence();
    let sim = bench_simulator(false);
    let factory = sjf_factory();
    let inspector = bench_inspector();
    let samples = analysis::collect_decisions(&inspector, &sim, &jobs, &factory);
    c.bench_function("fig13_collect_decisions", |b| {
        b.iter(|| {
            black_box(analysis::collect_decisions(
                &inspector,
                &sim,
                black_box(&jobs),
                &factory,
            ))
        })
    });
    c.bench_function("fig13_feature_cdf", |b| {
        b.iter(|| black_box(analysis::feature_cdf(black_box(&samples), 1, 101, false)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7_episode,
    bench_fig8_eval,
    bench_fig11_backfill,
    bench_fig12_slurm,
    bench_fig13_analysis
}
criterion_main!(figures);
