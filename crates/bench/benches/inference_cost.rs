//! §4.6 — the inference cost of one inspection decision (the paper
//! reports 0.7 ms; this bench shows the Rust MLP path in nanoseconds) and
//! the cost of its parts (feature build vs. forward pass).

use bench::bench_inspector;
use criterion::{criterion_group, criterion_main, Criterion};
use simhpc::{Observation, QueueEntry};
use std::hint::black_box;
use workload::Job;

fn observation(queue_len: usize) -> Observation {
    Observation {
        now: 5_000.0,
        job: Job::new(1, 4_000.0, 3_600.0, 7_200.0, 16),
        wait: 1_000.0,
        rejections: 3,
        max_rejections: 72,
        free_procs: 40,
        total_procs: 128,
        runnable: true,
        backfill_enabled: false,
        backfillable: 0,
        queue: (0..queue_len as u64)
            .map(|i| QueueEntry {
                id: i,
                wait: i as f64 * 60.0,
                estimate: 600.0 + i as f64 * 120.0,
                procs: 1 + (i % 16) as u32,
            })
            .collect(),
    }
}

fn bench_inference(c: &mut Criterion) {
    let agent = bench_inspector();
    let mut group = c.benchmark_group("inference_cost");
    for queue_len in [0usize, 16, 64, 256] {
        let obs = observation(queue_len);
        group.bench_function(format!("decision_queue_{queue_len}"), |b| {
            b.iter(|| black_box(agent.inspect(black_box(&obs))))
        });
    }
    group.finish();

    let obs = observation(32);
    c.bench_function("inference_feature_build", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            agent.features.build(black_box(&obs), &mut buf);
            black_box(buf.len())
        })
    });
    c.bench_function("inference_forward_pass", |b| {
        let state = vec![0.3f32; agent.policy.input_dim()];
        b.iter(|| black_box(agent.policy.prob_reject(black_box(&state))))
    });
}

criterion_group! {
    name = cost;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_inference
}
criterion_main!(cost);
