//! Criterion benches for the paper's tables: one bench group per table,
//! each measuring the core computation that regenerates it (miniature
//! scale, fixed seeds).

use bench::{bench_sequence, bench_simulator, bench_trace, sjf_factory};
use criterion::{criterion_group, criterion_main, Criterion};
use policies::PolicyKind;
use simhpc::{InspectorHook, Observation, SimConfig, Simulator};
use std::hint::black_box;
use workload::Job;

/// Table 1: the motivating 5-node example with a scripted rejection.
fn bench_table1(c: &mut Criterion) {
    struct RejectOnce(bool);
    impl InspectorHook for RejectOnce {
        fn inspect(&mut self, obs: &Observation) -> bool {
            if !self.0 && obs.job.id == 1 {
                self.0 = true;
                return true;
            }
            false
        }
    }
    let jobs = vec![
        Job::new(0, 0.0, 180.0, 180.0, 2),
        Job::new(1, 0.0, 300.0, 300.0, 4),
        Job::new(2, 60.0, 180.0, 180.0, 2),
    ];
    let sim = Simulator::new(5, SimConfig::default());
    c.bench_function("table1_motivating_example", |b| {
        b.iter(|| {
            let mut hook = RejectOnce(false);
            black_box(sim.run_inspected(black_box(&jobs), &mut policies::Sjf, &mut hook))
        })
    });
}

/// Table 2: trace generation + statistics.
fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_trace_generation", |b| {
        b.iter(|| {
            let t = workload::synthetic::generate(&workload::profiles::SDSC_SP2, 500, 3);
            black_box(t.stats())
        })
    });
    c.bench_function("table2_lublin_generation", |b| {
        b.iter(|| black_box(workload::lublin::generate(500, 3).stats()))
    });
}

/// Table 3: scoring a full queue under every base policy.
fn bench_table3(c: &mut Criterion) {
    let jobs = bench_sequence();
    let sim = bench_simulator(false);
    let mut group = c.benchmark_group("table3_policies");
    for kind in PolicyKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut p = kind.build();
                black_box(sim.run(black_box(&jobs), p.as_mut()))
            })
        });
    }
    group.finish();
}

/// Table 4: cross-trace evaluation (inspected run on a foreign trace).
fn bench_table4(c: &mut Criterion) {
    let inspector = bench::bench_inspector();
    let foreign = workload::lublin::generate(600, 9);
    let jobs = foreign.sequence(50, 128);
    let sim = Simulator::new(foreign.procs, SimConfig::default());
    let factory = sjf_factory();
    c.bench_function("table4_cross_trace_eval", |b| {
        b.iter(|| {
            let mut p = factory();
            let mut hook = inspector.hook();
            black_box(sim.run_inspected(black_box(&jobs), p.as_mut(), &mut hook))
        })
    });
}

/// Table 5: utilization computation over a simulated sequence.
fn bench_table5(c: &mut Criterion) {
    let jobs = bench_sequence();
    let sim = bench_simulator(true);
    let factory = sjf_factory();
    let result = {
        let mut p = factory();
        sim.run(&jobs, p.as_mut())
    };
    c.bench_function("table5_utilization_metrics", |b| {
        b.iter(|| {
            (
                black_box(result.util()),
                black_box(result.bsld()),
                black_box(result.mbsld()),
                black_box(result.wait()),
            )
        })
    });
    let _ = bench_trace();
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_table1, bench_table2, bench_table3, bench_table4, bench_table5
}
criterion_main!(tables);
