//! Ablation benches for the design knobs the paper fixes empirically
//! (§4.1): `MAX_INTERVAL` and `MAX_REJECTION_TIMES`, plus simulator
//! throughput scaling in sequence length. These quantify the *cost* side
//! of the knobs — how much simulated work an always-rejecting worst case
//! induces as the caps grow.

use bench::bench_trace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simhpc::{Observation, SimConfig, Simulator};
use std::hint::black_box;

fn bench_max_interval(c: &mut Criterion) {
    let trace = bench_trace();
    let jobs = trace.sequence(100, 64);
    let mut group = c.benchmark_group("ablation_max_interval");
    for interval in [60.0, 600.0, 3600.0] {
        let sim = Simulator::new(
            trace.procs,
            SimConfig {
                max_interval: interval,
                max_rejections: 8,
                backfill: false,
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(interval), &sim, |b, sim| {
            b.iter(|| {
                let mut always = |_: &Observation| true;
                black_box(sim.run_inspected(black_box(&jobs), &mut policies::Sjf, &mut always))
            })
        });
    }
    group.finish();
}

fn bench_max_rejections(c: &mut Criterion) {
    let trace = bench_trace();
    let jobs = trace.sequence(100, 64);
    let mut group = c.benchmark_group("ablation_max_rejections");
    for cap in [1u32, 8, 72] {
        let sim = Simulator::new(
            trace.procs,
            SimConfig {
                max_interval: 600.0,
                max_rejections: cap,
                backfill: false,
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(cap), &sim, |b, sim| {
            b.iter(|| {
                let mut always = |_: &Observation| true;
                black_box(sim.run_inspected(black_box(&jobs), &mut policies::Sjf, &mut always))
            })
        });
    }
    group.finish();
}

fn bench_sequence_scaling(c: &mut Criterion) {
    let trace = bench_trace();
    let sim = Simulator::new(trace.procs, SimConfig::default());
    let mut group = c.benchmark_group("simulator_sequence_scaling");
    for len in [64usize, 256, 1024] {
        let jobs = trace.sequence(0, len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &jobs, |b, jobs| {
            b.iter(|| black_box(sim.run(black_box(jobs), &mut policies::Sjf)))
        });
    }
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_max_interval, bench_max_rejections, bench_sequence_scaling
}
criterion_main!(ablations);
