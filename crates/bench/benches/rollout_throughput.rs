//! Rollout throughput: episodes/sec for the rollout portion of one training
//! epoch (SJF base policy, SDSC-SP2 profile, batch of 20 × 128-job
//! sequences), on 1 and 4 workers.
//!
//! `optimized` is the trainer's real path (baseline cache, pre-warmed to
//! training's steady state + work-stealing parallel map); `control` is the
//! pre-optimization shape (baseline re-simulated per episode + static
//! chunking). The `rollout_harness` binary runs the same comparison
//! standalone and records `BENCH_rollout.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bench::rollout::RolloutFixture;
use inspector::BaselineCache;

fn bench_rollout(c: &mut Criterion) {
    let fx = RolloutFixture::new();
    let cache = BaselineCache::new();
    for epoch in 0..8 {
        fx.epoch(epoch, 4, Some(&cache), false);
    }

    let mut group = c.benchmark_group("rollout_epoch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("optimized", workers),
            &workers,
            |b, &workers| {
                let mut epoch = 0;
                b.iter(|| {
                    epoch += 1;
                    fx.epoch(epoch % 8, workers, Some(&cache), false)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("control", workers),
            &workers,
            |b, &workers| {
                let mut epoch = 0;
                b.iter(|| {
                    epoch += 1;
                    fx.epoch(epoch % 8, workers, None, true)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rollout);
criterion_main!(benches);
