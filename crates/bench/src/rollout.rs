//! Rollout-throughput fixture shared by the `rollout_throughput` Criterion
//! bench and the `rollout_harness` binary (which writes `BENCH_rollout.json`).
//!
//! The measured unit is the rollout portion of one training epoch: a batch
//! of episodes, each simulating a `SEQ_LEN`-job SDSC-SP2 sequence twice (base SJF +
//! inspected). Two implementations are compared:
//!
//! * **optimized** — the trainer's real path: baseline-run cache +
//!   work-stealing `rlcore::parallel_map`;
//! * **control** — the pre-optimization shape: every episode re-simulates
//!   its baseline and workers get static contiguous chunks.

use inspector::{
    run_episode, BaselineCache, EpisodeSpec, FeatureBuilder, FeatureMode, Normalizer, PolicyFactory,
};
use obs::Telemetry;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rlcore::BinaryPolicy;
use simhpc::{Metric, SimConfig, Simulator};
use workload::{profiles, synthetic, JobTrace};

use crate::sjf_factory;

/// Batch size of the measured epoch (episodes per epoch).
pub const BATCH: usize = 20;
/// Jobs per episode sequence.
pub const SEQ_LEN: usize = 128;

/// Everything needed to roll out epochs outside a `Trainer`.
pub struct RolloutFixture {
    /// Simulator over the trace's machine (backfilling on, §4.4.5 setting).
    pub sim: Simulator,
    /// The training trace sequences are cut from.
    pub trace: JobTrace,
    /// Base-policy factory (SJF).
    pub factory: PolicyFactory,
    /// The (untrained, fixed-seed) inspector policy being rolled out.
    pub policy: BinaryPolicy,
    /// Feature builder matching the trace.
    pub features: FeatureBuilder,
    /// Largest valid sequence start offset.
    pub max_start: usize,
}

impl RolloutFixture {
    /// Deterministic fixture: small SDSC-SP2-like trace, so start offsets
    /// repeat across epochs exactly as they do in real training runs, where
    /// `epochs × batch` draws vastly outnumber distinct offsets. Arrivals
    /// are compressed 20× to put the machine in the congested regime —
    /// inspection only matters (and training only happens) when jobs queue.
    pub fn new() -> Self {
        let mut trace = synthetic::generate(&profiles::SDSC_SP2, 256, 0x5EED5);
        for job in &mut trace.jobs {
            job.submit *= 0.05;
        }
        let sim_config = SimConfig::with_backfill();
        let stats = trace.stats();
        let norm = Normalizer {
            max_estimate: stats.max_estimate.max(1.0),
            total_procs: trace.procs,
            max_wait: 86_400.0,
            max_interval: sim_config.max_interval,
            max_rejections: sim_config.max_rejections,
        };
        let features = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm,
        };
        let policy = steady_state_policy(features.dim());
        let sim = Simulator::new(trace.procs, sim_config);
        let max_start = trace.len().saturating_sub(SEQ_LEN);
        RolloutFixture {
            sim,
            trace,
            factory: sjf_factory(),
            policy,
            features,
            max_start,
        }
    }

    /// The start offsets of epoch `epoch` — the same deterministic draw the
    /// trainer makes.
    pub fn starts(&self, epoch: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(0x7261_696E ^ epoch as u64);
        (0..BATCH)
            .map(|_| rng.random_range(0..=self.max_start))
            .collect()
    }

    /// Roll out one epoch's batch. `cache` of `None` re-simulates every
    /// baseline (the control); `static_chunks` selects the control's
    /// scheduling. Returns total inspected-run scheduling points.
    pub fn epoch(
        &self,
        epoch: usize,
        workers: usize,
        cache: Option<&BaselineCache>,
        static_chunks: bool,
    ) -> u64 {
        self.epoch_traced(epoch, workers, cache, static_chunks, &Telemetry::disabled())
    }

    /// Like [`RolloutFixture::epoch`], but streaming per-scheduling-point
    /// events through `telemetry` — the `telemetry_overhead` harness case.
    pub fn epoch_traced(
        &self,
        epoch: usize,
        workers: usize,
        cache: Option<&BaselineCache>,
        static_chunks: bool,
        telemetry: &Telemetry,
    ) -> u64 {
        let starts = self.starts(epoch);
        let seed_base = 0x9E37_79B9u64.wrapping_add(epoch as u64);
        let run_one = |i: usize| {
            let jobs = self.trace.sequence(starts[i], SEQ_LEN);
            let seed = seed_base.wrapping_add(i as u64);
            let base = cache.map(|cache| {
                cache.get_or_run(starts[i], || {
                    let mut p = (self.factory)();
                    self.sim.run(&jobs, p.as_mut())
                })
            });
            run_episode(&EpisodeSpec {
                seed,
                base,
                telemetry: telemetry.clone(),
                ..EpisodeSpec::new(
                    &self.sim,
                    &jobs,
                    &self.factory,
                    &self.policy,
                    &self.features,
                )
            })
        };
        let episodes = if static_chunks {
            static_chunk_map(BATCH, workers, run_one)
        } else {
            rlcore::parallel_map(BATCH, workers, run_one)
        };
        episodes.iter().map(|e| e.inspected.inspections).sum()
    }
}

impl Default for RolloutFixture {
    fn default() -> Self {
        Self::new()
    }
}

/// A policy rejecting at the converged rate rather than an untrained net's
/// ~50%: training throughput is dominated by its steady state (Fig. 7 shows
/// rejection ratios settling near 10–20%), and rejections inflate only the
/// inspected run, so benchmarking at 50% would overweight it. Implemented
/// by raising the accept bias on an otherwise fresh fixed-seed network.
fn steady_state_policy(dim: usize) -> BinaryPolicy {
    let fresh = BinaryPolicy::new(dim, 7);
    let mut layers = fresh.mlp().layers().to_vec();
    let out = layers.last_mut().expect("policy net has layers");
    out.b[rlcore::ACCEPT as usize] += 2.5;
    BinaryPolicy::from_mlp(tinynn::Mlp::from_layers(layers).expect("valid layer stack"))
        .expect("two-logit network")
}

/// The pre-optimization scheduler: contiguous index chunks, one per worker,
/// no stealing. Kept here purely as the benchmark control.
pub fn static_chunk_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || (lo..hi).map(|i| (i, f(i))).collect::<Vec<_>>())
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("control worker panicked") {
                out[i] = Some(value);
            }
        }
    });
    out.into_iter()
        .map(|s| s.expect("chunks cover all indices"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_chunk_map_matches_sequential() {
        let seq: Vec<usize> = (0..23).map(|i| i * 3).collect();
        for workers in [1, 2, 4, 23, 64] {
            assert_eq!(static_chunk_map(23, workers, |i| i * 3), seq);
        }
        let empty: Vec<usize> = static_chunk_map(0, 4, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn cached_and_control_epochs_see_identical_episodes() {
        let fx = RolloutFixture::new();
        let cache = BaselineCache::new();
        let cached = fx.epoch(0, 2, Some(&cache), false);
        let control = fx.epoch(0, 2, None, true);
        assert_eq!(cached, control, "scheduling-point counts must match");
        assert!(cache.base_runs() <= BATCH as u64);
    }
}
