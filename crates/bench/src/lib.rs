//! Shared fixtures for the Criterion benches.
//!
//! Each paper table/figure has a corresponding bench (see `benches/`):
//! Criterion measures the core computation of each experiment at a
//! miniature, fixed-seed scale so regressions in simulator, policy, or
//! training throughput are caught without re-running full experiments.

use inspector::{
    factory_for, FeatureBuilder, FeatureMode, InspectorConfig, Normalizer, PolicyFactory,
    SchedInspector, Trainer,
};
use policies::PolicyKind;
use rlcore::BinaryPolicy;
use simhpc::{Metric, SimConfig, Simulator};
use workload::{profiles, synthetic, Job, JobTrace};

pub mod rollout;

/// A small fixed SDSC-SP2-like trace shared by all benches.
pub fn bench_trace() -> JobTrace {
    synthetic::generate(&profiles::SDSC_SP2, 1_500, 0xBE7C4)
}

/// A fixed 128-job sequence from the bench trace.
pub fn bench_sequence() -> Vec<Job> {
    bench_trace().sequence(100, 128)
}

/// Simulator for the bench trace.
pub fn bench_simulator(backfill: bool) -> Simulator {
    let config = if backfill {
        SimConfig::with_backfill()
    } else {
        SimConfig::default()
    };
    Simulator::new(bench_trace().procs, config)
}

/// A deterministic untrained inspector sized for the bench trace.
pub fn bench_inspector() -> SchedInspector {
    let fb = FeatureBuilder {
        mode: FeatureMode::Manual,
        metric: Metric::Bsld,
        norm: Normalizer::new(128, 432_000.0),
    };
    SchedInspector::new(BinaryPolicy::new(fb.dim(), 7), fb)
}

/// An SJF factory.
pub fn sjf_factory() -> PolicyFactory {
    factory_for(PolicyKind::Sjf)
}

/// A miniature trainer (1 epoch ≈ a few ms) for training-throughput
/// benches.
pub fn bench_trainer() -> Trainer {
    let config = InspectorConfig {
        batch_size: 4,
        seq_len: 32,
        epochs: 1,
        seed: 11,
        workers: 1,
        ..Default::default()
    };
    Trainer::builder(bench_trace().split(0.2).0)
        .policy(PolicyKind::Sjf)
        .config(config)
        .build()
        .expect("bench config is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(bench_sequence(), bench_sequence());
        assert_eq!(bench_trace().procs, 128);
    }

    #[test]
    fn trainer_fixture_runs() {
        let mut t = bench_trainer();
        let rec = t.train_epoch(0);
        assert!(rec.base_metric.is_finite());
    }
}
