//! Rollout-throughput harness: measures episodes/sec for the optimized path
//! (baseline cache + work-stealing) against the pre-optimization control
//! (per-episode baseline + static chunking) and writes `BENCH_rollout.json`.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p bench --bin rollout_harness
//! ```
//!
//! Protocol: a warm-up phase populates the baseline cache (training reaches
//! this steady state within the first few epochs — the trace has far fewer
//! distinct start offsets than `epochs × batch` draws), then both variants
//! roll out the *same* deterministic epoch schedule. A counting allocator
//! separately verifies the simulator's steady-state allocation behavior.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use bench::rollout::{RolloutFixture, BATCH, SEQ_LEN};
use inspector::BaselineCache;
use obs::{NullSink, Telemetry};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const WARMUP_EPOCHS: usize = 24;
const ROUNDS: usize = 6;
const EPOCHS_PER_ROUND: usize = 20;
const MEASURE_EPOCHS: usize = ROUNDS * EPOCHS_PER_ROUND;

/// Episodes/sec for (optimized, control) at the given worker count.
///
/// The two variants are interleaved in `ROUNDS` alternating blocks over the
/// *same* epoch schedule, so slow drift in machine load biases neither side.
fn measure_pair(fx: &RolloutFixture, workers: usize, cache: &BaselineCache) -> (f64, f64) {
    // One untimed epoch per variant to stabilize thread/allocator state.
    fx.epoch(usize::MAX / 2, workers, Some(cache), false);
    fx.epoch(usize::MAX / 2, workers, None, true);
    let (mut opt_secs, mut ctl_secs) = (0.0f64, 0.0f64);
    for round in 0..ROUNDS {
        let first = round * EPOCHS_PER_ROUND;
        let t0 = Instant::now();
        for epoch in first..first + EPOCHS_PER_ROUND {
            fx.epoch(epoch, workers, Some(cache), false);
        }
        opt_secs += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for epoch in first..first + EPOCHS_PER_ROUND {
            fx.epoch(epoch, workers, None, true);
        }
        ctl_secs += t0.elapsed().as_secs_f64();
    }
    let episodes = (MEASURE_EPOCHS * BATCH) as f64;
    (episodes / opt_secs, episodes / ctl_secs)
}

/// Episodes/sec for (disabled, NullSink, RegistrySink, JsonlSink)
/// telemetry at the given worker count — the `telemetry_overhead` case.
/// Disabled vs NullSink isolates the cost of the per-point `Option` check
/// and event construction (null and registry sinks decline per-event
/// timestamps, so no clock read is charged); RegistrySink adds live atomic
/// aggregation (the `/metrics` path); JsonlSink adds timestamping,
/// serialization, and buffered file I/O.
///
/// JsonlSink is measured *last* in each round and its dirty pages are
/// synced to disk outside the timed windows: asynchronous kernel
/// writeback from the growing sidecar would otherwise tax whichever
/// variant happens to run next, not the one that wrote the data.
fn measure_telemetry(fx: &RolloutFixture, workers: usize, cache: &BaselineCache) -> [f64; 4] {
    let sink_path = std::env::temp_dir().join("bench-telemetry-overhead.jsonl");
    let registry = std::sync::Arc::new(obs::Registry::new());
    let variants = [
        Telemetry::disabled(),
        Telemetry::new(std::sync::Arc::new(NullSink)),
        Telemetry::with_registry(registry),
        Telemetry::jsonl(&sink_path).expect("create JSONL telemetry"),
    ];
    let jsonl = &variants[3];
    for telemetry in &variants {
        fx.epoch_traced(usize::MAX / 2, workers, Some(cache), false, telemetry);
    }
    let mut secs = [0.0f64; 4];
    for round in 0..ROUNDS {
        let first = round * EPOCHS_PER_ROUND;
        for (k, telemetry) in variants.iter().enumerate() {
            let t0 = Instant::now();
            for epoch in first..first + EPOCHS_PER_ROUND {
                fx.epoch_traced(epoch, workers, Some(cache), false, telemetry);
            }
            secs[k] += t0.elapsed().as_secs_f64();
        }
        jsonl.flush();
        if let Ok(f) = std::fs::File::open(&sink_path) {
            f.sync_all().ok();
        }
    }
    std::fs::remove_file(&sink_path).ok();
    let episodes = (MEASURE_EPOCHS * BATCH) as f64;
    let [off, null, registry, jsonl] = secs.map(|s| episodes / s);
    [off, null, jsonl, registry]
}

/// Allocations per scheduling point of a steady-state *base* simulation
/// (the path the scratch-buffer work made allocation-free).
fn steady_state_allocs(fx: &RolloutFixture) -> f64 {
    let jobs_small = fx.trace.sequence(0, SEQ_LEN / 2);
    let jobs_full = fx.trace.sequence(0, SEQ_LEN);
    let count = |jobs: &[workload::Job]| {
        let mut p = (fx.factory)();
        ALLOCS.store(0, Ordering::SeqCst);
        COUNTING.store(true, Ordering::SeqCst);
        let result = fx.sim.run(jobs, p.as_mut());
        COUNTING.store(false, Ordering::SeqCst);
        (
            ALLOCS.load(Ordering::SeqCst),
            result.inspections.max(jobs.len() as u64),
        )
    };
    let (a_small, _) = count(&jobs_small);
    let (a_full, points) = count(&jobs_full);
    // Warm-up allocations are common to both runs; the marginal cost of the
    // extra scheduling points is the steady-state figure.
    a_full.saturating_sub(a_small) as f64 / (points as f64 / 2.0).max(1.0)
}

fn main() {
    let fx = RolloutFixture::new();
    eprintln!(
        "trace: {} jobs on {} procs, {} distinct start offsets, batch {BATCH} x {SEQ_LEN} jobs",
        fx.trace.len(),
        fx.trace.procs,
        fx.max_start + 1,
    );

    // Warm the cache exactly as training would: by rolling out epochs.
    let cache = BaselineCache::new();
    for epoch in 0..WARMUP_EPOCHS {
        fx.epoch(epoch, 4, Some(&cache), false);
    }
    let warm_runs = cache.base_runs();
    eprintln!(
        "warm-up: {WARMUP_EPOCHS} epochs -> {} baselines simulated, hit rate {:.3}",
        warm_runs,
        cache.hit_rate(),
    );

    let mut rows = Vec::new();
    for workers in [1usize, 4] {
        let (opt_eps, ctl_eps) = measure_pair(&fx, workers, &cache);
        let speedup = opt_eps / ctl_eps;
        eprintln!(
            "workers {workers}: optimized {opt_eps:.1} eps/s, control {ctl_eps:.1} eps/s, {speedup:.2}x"
        );
        rows.push((workers, opt_eps, ctl_eps, speedup));
    }

    let [off_eps, null_eps, jsonl_eps, registry_eps] = measure_telemetry(&fx, 4, &cache);
    let null_pct = (off_eps / null_eps - 1.0) * 100.0;
    let jsonl_pct = (off_eps / jsonl_eps - 1.0) * 100.0;
    let registry_pct = (off_eps / registry_eps - 1.0) * 100.0;
    eprintln!(
        "telemetry overhead (4 workers): disabled {off_eps:.1} eps/s, \
         NullSink {null_eps:.1} ({null_pct:+.2}%), JsonlSink {jsonl_eps:.1} ({jsonl_pct:+.2}%), \
         RegistrySink {registry_eps:.1} ({registry_pct:+.2}%)"
    );

    let per_point = steady_state_allocs(&fx);
    // The pre-optimization loop allocated the observation queue vector and a
    // reservation release-list per inspected scheduling point, plus another
    // release-list per backfill pass; the control path above still benefits
    // from their removal, so the avoided count is reported per measured run.
    let avoided_per_point = 3.0 - per_point;
    let (_, points_per_run) = {
        let points = fx.epoch(0, 1, Some(&cache), false);
        (0, points * MEASURE_EPOCHS as u64)
    };
    eprintln!(
        "steady-state allocs/point: {per_point:.4} (avoided vs old loop: {avoided_per_point:.2})"
    );

    let json = format!(
        "{{\n  \"batch\": {BATCH},\n  \"seq_len\": {SEQ_LEN},\n  \"trace\": \"SDSC-SP2 synthetic, {} jobs, {} procs\",\n  \"measure_epochs\": {MEASURE_EPOCHS},\n  \"episodes_per_sec\": [\n{}\n  ],\n  \"baseline_cache\": {{\n    \"distinct_offsets\": {},\n    \"base_runs\": {},\n    \"lookups\": {},\n    \"hit_rate\": {:.4}\n  }},\n  \"telemetry_overhead\": {{\n    \"workers\": 4,\n    \"disabled_eps\": {:.1},\n    \"null_sink_eps\": {:.1},\n    \"jsonl_sink_eps\": {:.1},\n    \"registry_sink_eps\": {:.1},\n    \"null_sink_overhead_pct\": {:.2},\n    \"jsonl_sink_overhead_pct\": {:.2},\n    \"registry_sink_overhead_pct\": {:.2}\n  }},\n  \"allocations\": {{\n    \"steady_state_allocs_per_scheduling_point\": {:.4},\n    \"avoided_per_scheduling_point_vs_old_loop\": {:.2},\n    \"approx_avoided_per_measured_run\": {}\n  }}\n}}\n",
        fx.trace.len(),
        fx.trace.procs,
        rows.iter()
            .map(|(w, o, c, s)| format!(
                "    {{\"workers\": {w}, \"optimized\": {o:.1}, \"control\": {c:.1}, \"speedup\": {s:.2}}}"
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        fx.max_start + 1,
        cache.base_runs(),
        cache.lookups(),
        cache.hit_rate(),
        off_eps,
        null_eps,
        jsonl_eps,
        registry_eps,
        null_pct,
        jsonl_pct,
        registry_pct,
        per_point,
        avoided_per_point,
        (avoided_per_point * points_per_run as f64) as u64,
    );
    std::fs::write("BENCH_rollout.json", &json).expect("write BENCH_rollout.json");
    println!("{json}");
}
