//! Distributed-training scaling harness: measures end-to-end episodes/sec
//! of the `dist` coordinator/worker trainer at 1, 2, and 4 in-process
//! workers and writes `BENCH_train.json` — the committed baseline behind
//! `schedinspector report`'s `train` throughput gate.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p bench --bin dist_harness
//! ```
//!
//! Every timed run is also checked against the in-process `Trainer`
//! oracle: a sync-merge distributed run must finish with the byte-exact
//! checkpoint the local loop produces, so the published scaling numbers
//! can never come from a run that silently diverged.

use std::time::Instant;

use dist::{spawn_local_workers, Coordinator, DistConfig, FrameKind, MergeMode};
use inspector::{InspectorConfig, Trainer};
use obs::Telemetry;
use policies::PolicyKind;
use workload::{profiles, synthetic, JobTrace};

// Sized so episode simulation dominates: per-epoch fixed costs
// (checkpoint serialization, shard hand-off) are noise against 32
// episodes of 128-job rollouts, which is what a real training run
// looks like — scaling measured on a toy batch would only measure
// the protocol.
const JOBS: usize = 2000;
const EPOCHS: usize = 4;
const BATCH: usize = 32;
const SEQ_LEN: usize = 128;
const SEED: u64 = 42;
/// Timed repetitions per worker count; the best round is published
/// (machine-load dips only ever make a run slower, never faster).
const ROUNDS: usize = 3;

fn config() -> InspectorConfig {
    InspectorConfig {
        epochs: EPOCHS,
        batch_size: BATCH,
        seq_len: SEQ_LEN,
        seed: SEED,
        workers: 1,
        ..InspectorConfig::default()
    }
}

fn make_trainer(trace: JobTrace) -> Trainer {
    Trainer::builder(trace)
        .policy(PolicyKind::Sjf)
        .config(config())
        .build()
        .expect("valid trainer")
}

/// One full distributed run; returns (final checkpoint, wall seconds).
fn run_once(trace: &JobTrace, workers: usize) -> (String, f64) {
    let mut coordinator_trainer = make_trainer(trace.clone());
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let handle = spawn_local_workers(
        coordinator.addr(),
        (0..workers).map(|_| make_trainer(trace.clone())).collect(),
    );
    let cfg = DistConfig {
        shards: workers.min(BATCH),
        merge: MergeMode::Sync,
        frame: FrameKind::Binary,
        ..DistConfig::default()
    };
    let t0 = Instant::now();
    coordinator
        .run(&mut coordinator_trainer, &cfg, None, &Telemetry::disabled())
        .expect("bench run completes");
    let secs = t0.elapsed().as_secs_f64();
    let _ = handle.join();
    (coordinator_trainer.checkpoint_text(EPOCHS), secs)
}

fn main() {
    let trace = synthetic::generate(&profiles::SDSC_SP2, JOBS, 7);
    // Worker rollouts only overlap when there are cores to run them on;
    // committing the core count makes a baseline measured on a small
    // machine interpretable on a big one.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "trace: {} jobs on {} procs, batch {BATCH} x {SEQ_LEN} jobs, {EPOCHS} epochs, {cores} core(s)",
        trace.len(),
        trace.procs,
    );
    let episodes = (EPOCHS * BATCH) as f64;

    // The oracle every distributed run must reproduce byte-for-byte.
    let mut local = make_trainer(trace.clone());
    let t0 = Instant::now();
    local.train();
    let local_eps = episodes / t0.elapsed().as_secs_f64();
    let local_ckpt = local.checkpoint_text(EPOCHS);
    eprintln!("in-process trainer: {local_eps:.1} eps/s");

    let mut rows: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4] {
        run_once(&trace, workers); // warm-up: threads, sockets, page cache
        let mut best = 0.0f64;
        for _ in 0..ROUNDS {
            let (ckpt, secs) = run_once(&trace, workers);
            assert_eq!(
                ckpt, local_ckpt,
                "sync distributed run diverged from the in-process oracle"
            );
            best = best.max(episodes / secs);
        }
        let base = rows.first().map_or(best, |&(_, one)| one);
        eprintln!(
            "workers {workers}: {best:.1} eps/s ({:.2}x vs 1 worker, best of {ROUNDS})",
            best / base
        );
        rows.push((workers, best));
    }

    let one_worker = rows[0].1;
    let json = format!(
        "{{\n  \"trace\": \"SDSC-SP2 synthetic, {} jobs, {} procs\",\n  \"epochs\": {EPOCHS},\n  \"batch\": {BATCH},\n  \"seq_len\": {SEQ_LEN},\n  \"merge\": \"sync\",\n  \"frame\": \"binary\",\n  \"cores\": {cores},\n  \"local_eps\": {local_eps:.1},\n  \"episodes_per_sec\": [\n{}\n  ]\n}}\n",
        trace.len(),
        trace.procs,
        rows.iter()
            .map(|(w, eps)| format!(
                "    {{\"workers\": {w}, \"eps\": {eps:.1}, \"speedup\": {:.2}}}",
                eps / one_worker
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_train.json", &json).expect("write BENCH_train.json");
    println!("{json}");
}
