//! Multi-layer perceptrons with a training tape.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::layer::Dense;

/// A feed-forward MLP.
///
/// The paper's inspector network is `Mlp::new(&[d, 32, 16, 8, 2], ...)`
/// (§3.1): three hidden layers of 32/16/8 units and a two-logit output —
/// 938 parameters for the 7-feature (no-backfilling) input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// The layers, in order (read-only; used by serialization).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Rebuild an MLP from explicit layers, validating that adjacent
    /// dimensions agree.
    pub fn from_layers(layers: Vec<Dense>) -> Result<Mlp, String> {
        if layers.is_empty() {
            return Err("an MLP needs at least one layer".into());
        }
        for w in layers.windows(2) {
            if w[0].fan_out != w[1].fan_in {
                return Err(format!(
                    "layer dimension mismatch: {} out vs {} in",
                    w[0].fan_out, w[1].fan_in
                ));
            }
        }
        Ok(Mlp { layers })
    }
}

/// Cached forward-pass state needed for backprop: the input plus each
/// layer's pre-activations and outputs.
#[derive(Debug, Clone, Default)]
pub struct Tape {
    input: Vec<f32>,
    zs: Vec<Vec<f32>>,
    activations: Vec<Vec<f32>>,
}

/// Reusable buffers for [`Mlp::forward_scratch`]. After the first pass the
/// buffers hold enough capacity for the widest layer, so repeated inference
/// through the same (or any same-sized) network allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    a: Vec<f32>,
    z: Vec<f32>,
    next: Vec<f32>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes: `sizes[0]` inputs through
    /// `sizes[n-1]` outputs. Hidden layers use `hidden`; the final layer
    /// uses `output` (use [`Activation::Identity`] for logits/values).
    pub fn new<R: Rng + ?Sized>(
        sizes: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == sizes.len() { output } else { hidden };
                Dense::new(w[0], w[1], act, rng)
            })
            .collect();
        Mlp { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.fan_in)
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.fan_out)
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Inference-only forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut scratch = ForwardScratch::default();
        self.forward_scratch(x, &mut scratch).to_vec()
    }

    /// Inference forward pass through caller-owned scratch buffers — the
    /// allocation-free path for hot loops (e.g. one policy query per
    /// scheduling point). The returned slice borrows from `scratch` and is
    /// valid until the next call.
    pub fn forward_scratch<'s>(&self, x: &[f32], scratch: &'s mut ForwardScratch) -> &'s [f32] {
        scratch.a.clear();
        scratch.a.extend_from_slice(x);
        for layer in &self.layers {
            layer.forward(&scratch.a, &mut scratch.z, &mut scratch.next);
            std::mem::swap(&mut scratch.a, &mut scratch.next);
        }
        &scratch.a
    }

    /// Forward pass recording everything backprop needs into `tape`.
    pub fn forward_train<'t>(&self, x: &[f32], tape: &'t mut Tape) -> &'t [f32] {
        tape.input.clear();
        tape.input.extend_from_slice(x);
        tape.zs.resize_with(self.layers.len(), Vec::new);
        tape.activations.resize_with(self.layers.len(), Vec::new);
        for (i, layer) in self.layers.iter().enumerate() {
            let (head, tail) = tape.activations.split_at_mut(i);
            let input: &[f32] = if i == 0 { &tape.input } else { &head[i - 1] };
            layer.forward(input, &mut tape.zs[i], &mut tail[0]);
        }
        tape.activations.last().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Backward pass from `grad_out` (∂L/∂output), accumulating parameter
    /// gradients. Call [`Mlp::zero_grads`] before a new accumulation round.
    pub fn backward(&mut self, tape: &Tape, grad_out: &[f32]) {
        let mut grad = grad_out.to_vec();
        let mut grad_next = Vec::new();
        for i in (0..self.layers.len()).rev() {
            let x: &[f32] = if i == 0 {
                &tape.input
            } else {
                &tape.activations[i - 1]
            };
            let (z, a) = (&tape.zs[i], &tape.activations[i]);
            self.layers[i].backward(x, z, a, &grad, &mut grad_next);
            std::mem::swap(&mut grad, &mut grad_next);
        }
    }

    /// Zero all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// Visit every (parameter, gradient) pair mutably — the optimizer hook.
    pub fn visit_params(&mut self, mut f: impl FnMut(usize, &mut f32, f32)) {
        let mut idx = 0;
        for l in &mut self.layers {
            if l.gw.len() != l.w.len() || l.gb.len() != l.b.len() {
                l.zero_grads();
            }
            for (w, &g) in l.w.iter_mut().zip(&l.gw) {
                f(idx, w, g);
                idx += 1;
            }
            for (b, &g) in l.b.iter_mut().zip(&l.gb) {
                f(idx, b, g);
                idx += 1;
            }
        }
    }

    /// Flatten every parameter into one vector, in [`Mlp::visit_params`]
    /// order (per layer: weights, then biases).
    pub fn params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(&l.w);
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Overwrite every parameter from a flat vector laid out like
    /// [`Mlp::params`] — the hook a parameter-averaging merge uses to
    /// install blended weights into a same-shaped network.
    pub fn set_params(&mut self, params: &[f32]) -> Result<(), String> {
        if params.len() != self.param_count() {
            return Err(format!(
                "parameter vector holds {} values, network has {}",
                params.len(),
                self.param_count()
            ));
        }
        let mut idx = 0;
        for l in &mut self.layers {
            for w in l.w.iter_mut() {
                *w = params[idx];
                idx += 1;
            }
            for b in l.b.iter_mut() {
                *b = params[idx];
                idx += 1;
            }
        }
        Ok(())
    }

    /// Global L2 norm of the accumulated gradients.
    pub fn grad_norm(&self) -> f32 {
        let mut s = 0.0f32;
        for l in &self.layers {
            s += l.gw.iter().map(|g| g * g).sum::<f32>();
            s += l.gb.iter().map(|g| g * g).sum::<f32>();
        }
        s.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(sizes: &[usize], seed: u64) -> Mlp {
        Mlp::new(
            sizes,
            Activation::Tanh,
            Activation::Identity,
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn paper_network_has_938_parameters() {
        // 7 features (no backfilling), hidden 32/16/8, 2 logits — §3.1.
        let net = mlp(&[7, 32, 16, 8, 2], 0);
        assert_eq!(net.param_count(), 938);
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let net = mlp(&[4, 8, 3], 1);
        let x = [0.1, -0.5, 0.9, 0.0];
        let mut tape = Tape::default();
        let out_train = net.forward_train(&x, &mut tape).to_vec();
        let out = net.forward(&x);
        assert_eq!(out, out_train);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn gradcheck_full_network() {
        let mut net = mlp(&[3, 5, 4, 2], 2);
        let x = [0.4f32, -0.2, 0.7];
        // Loss = out[0] - 2*out[1].
        let loss = |n: &Mlp| {
            let o = n.forward(&x);
            o[0] - 2.0 * o[1]
        };
        let mut tape = Tape::default();
        net.zero_grads();
        net.forward_train(&x, &mut tape);
        net.backward(&tape, &[1.0, -2.0]);

        let analytic: Vec<f32> = {
            let mut v = Vec::new();
            net.visit_params(|_, _, g| v.push(g));
            v
        };
        // Finite differences over every parameter.
        let eps = 1e-3;
        let mut idx = 0;
        let snapshot = net.clone();
        let n_params = analytic.len();
        #[allow(clippy::needless_range_loop)]
        for p in 0..n_params {
            let mut plus = snapshot.clone();
            plus.visit_params(|i, w, _| {
                if i == p {
                    *w += eps;
                }
            });
            let mut minus = snapshot.clone();
            minus.visit_params(|i, w, _| {
                if i == p {
                    *w -= eps;
                }
            });
            let num = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (num - analytic[p]).abs() < 2e-2,
                "param {p}: numeric {num} vs analytic {}",
                analytic[p]
            );
            idx += 1;
        }
        assert_eq!(idx, n_params);
    }

    #[test]
    fn forward_scratch_matches_forward_across_reuse() {
        let small = mlp(&[4, 8, 3], 1);
        let wide = mlp(&[4, 16, 3], 5);
        let x = [0.1, -0.5, 0.9, 0.0];
        let mut scratch = ForwardScratch::default();
        // Reusing one scratch across different nets and repeated calls must
        // not change results.
        for _ in 0..3 {
            assert_eq!(small.forward_scratch(&x, &mut scratch), small.forward(&x));
            assert_eq!(wide.forward_scratch(&x, &mut scratch), wide.forward(&x));
        }
    }

    #[test]
    fn clone_preserves_outputs() {
        let net = mlp(&[4, 8, 2], 3);
        let copied = net.clone();
        let x = [0.3, 0.1, -0.2, 0.8];
        assert_eq!(net.forward(&x), copied.forward(&x));
    }

    #[test]
    fn grad_norm_positive_after_backward() {
        let mut net = mlp(&[3, 4, 1], 4);
        let mut tape = Tape::default();
        net.zero_grads();
        assert_eq!(net.grad_norm(), 0.0);
        net.forward_train(&[1.0, 1.0, 1.0], &mut tape);
        net.backward(&tape, &[1.0]);
        assert!(net.grad_norm() > 0.0);
    }
}
