//! The Adam optimizer (Kingma & Ba, 2015).

use serde::{Deserialize, Serialize};

use crate::mlp::Mlp;

/// Adam state for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate (the paper trains with 1e-3, §4.1).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Adam with standard betas for a network with `n_params` parameters.
    pub fn new(lr: f32, n_params: usize) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one Adam step using the gradients currently accumulated in the
    /// network, scaled by `grad_scale` (e.g. `1 / batch_size`).
    pub fn step(&mut self, net: &mut Mlp, grad_scale: f32) {
        assert_eq!(
            self.m.len(),
            net.param_count(),
            "optimizer/network size mismatch"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params(|i, w, g| {
            let g = g * grad_scale;
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mhat = m[i] / b1t;
            let vhat = v[i] / b2t;
            *w -= lr * mhat / (vhat.sqrt() + eps);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Adam on a regression task must drive the loss down.
    #[test]
    fn adam_fits_xor() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.01, net.param_count());
        let data: [([f32; 2], f32); 4] = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut tape = Tape::default();
        let loss_at = |net: &Mlp| -> f32 {
            data.iter()
                .map(|(x, y)| (net.forward(x)[0] - y).powi(2))
                .sum::<f32>()
                / 4.0
        };
        let initial = loss_at(&net);
        for _ in 0..2000 {
            net.zero_grads();
            for (x, y) in &data {
                let out = net.forward_train(x, &mut tape)[0];
                let grad = 2.0 * (out - y);
                net.backward(&tape, &[grad]);
            }
            opt.step(&mut net, 0.25);
        }
        let fin = loss_at(&net);
        assert!(fin < 0.01, "loss did not converge: {initial} -> {fin}");
        assert_eq!(opt.steps(), 2000);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Mlp::new(&[2, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.01, 5);
        opt.step(&mut net, 1.0);
    }
}
