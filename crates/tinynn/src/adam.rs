//! The Adam optimizer (Kingma & Ba, 2015).

use serde::{Deserialize, Serialize};

use crate::mlp::Mlp;

/// Adam state for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate (the paper trains with 1e-3, §4.1).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Adam with standard betas for a network with `n_params` parameters.
    pub fn new(lr: f32, n_params: usize) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Number of parameters this optimizer's moment vectors cover.
    pub fn param_len(&self) -> usize {
        self.m.len()
    }

    /// The first- and second-moment vectors `(m, v)` — read-only, exposed
    /// so a distributed merge can average optimizer state across replicas.
    pub fn moments(&self) -> (&[f32], &[f32]) {
        (&self.m, &self.v)
    }

    /// Rebuild optimizer state from explicit parts — the constructor a
    /// parameter-averaging merge uses after blending moment vectors.
    pub fn from_state(
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        m: Vec<f32>,
        v: Vec<f32>,
        t: u64,
    ) -> Result<Self, String> {
        if m.len() != v.len() {
            return Err(format!(
                "moment vectors disagree: m covers {} params, v covers {}",
                m.len(),
                v.len()
            ));
        }
        Ok(Adam {
            lr,
            beta1,
            beta2,
            eps,
            m,
            v,
            t,
        })
    }

    /// Serialize the full optimizer state (hyperparameters, moment
    /// vectors, step count) in the same diff-friendly text style as
    /// [`Mlp::to_text`]. Floats use `{:e}`, which roundtrips `f32`
    /// exactly — resuming from text is bit-identical.
    pub fn to_text(&self) -> String {
        let mut out = String::from("tinynn-adam v1\n");
        out.push_str(&format!(
            "hyper {:e} {:e} {:e} {:e}\n",
            self.lr, self.beta1, self.beta2, self.eps
        ));
        out.push_str(&format!("t {}\n", self.t));
        crate::serialize::write_floats(&mut out, "m", &self.m);
        crate::serialize::write_floats(&mut out, "v", &self.v);
        out
    }

    /// Parse optimizer state written by [`Adam::to_text`]. `n_params`
    /// must match the network this optimizer will step.
    pub fn from_text(text: &str, n_params: usize) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty optimizer state")?;
        if header.trim() != "tinynn-adam v1" {
            return Err(format!("bad optimizer header {header:?}"));
        }
        let hyper =
            crate::serialize::parse_floats(lines.next().ok_or("missing hyper line")?, "hyper", 4)?;
        let t: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("t "))
            .ok_or("missing t line")?
            .trim()
            .parse()
            .map_err(|e| format!("bad step count: {e}"))?;
        let m =
            crate::serialize::parse_floats(lines.next().ok_or("missing m line")?, "m", n_params)?;
        let v =
            crate::serialize::parse_floats(lines.next().ok_or("missing v line")?, "v", n_params)?;
        Ok(Adam {
            lr: hyper[0],
            beta1: hyper[1],
            beta2: hyper[2],
            eps: hyper[3],
            m,
            v,
            t,
        })
    }

    /// Apply one Adam step using the gradients currently accumulated in the
    /// network, scaled by `grad_scale` (e.g. `1 / batch_size`).
    pub fn step(&mut self, net: &mut Mlp, grad_scale: f32) {
        assert_eq!(
            self.m.len(),
            net.param_count(),
            "optimizer/network size mismatch"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params(|i, w, g| {
            let g = g * grad_scale;
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mhat = m[i] / b1t;
            let vhat = v[i] / b2t;
            *w -= lr * mhat / (vhat.sqrt() + eps);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Adam on a regression task must drive the loss down.
    #[test]
    fn adam_fits_xor() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.01, net.param_count());
        let data: [([f32; 2], f32); 4] = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut tape = Tape::default();
        let loss_at = |net: &Mlp| -> f32 {
            data.iter()
                .map(|(x, y)| (net.forward(x)[0] - y).powi(2))
                .sum::<f32>()
                / 4.0
        };
        let initial = loss_at(&net);
        for _ in 0..2000 {
            net.zero_grads();
            for (x, y) in &data {
                let out = net.forward_train(x, &mut tape)[0];
                let grad = 2.0 * (out - y);
                net.backward(&tape, &[grad]);
            }
            opt.step(&mut net, 0.25);
        }
        let fin = loss_at(&net);
        assert!(fin < 0.01, "loss did not converge: {initial} -> {fin}");
        assert_eq!(opt.steps(), 2000);
    }

    #[test]
    fn state_text_roundtrips_bit_identically() {
        // Train a few steps so m/v/t are non-trivial, snapshot, train one
        // more step on both the original and the restored copy: the
        // resulting networks must match bit-for-bit.
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Mlp::new(&[3, 4, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.01, net.param_count());
        let mut tape = Tape::default();
        let step = |net: &mut Mlp, opt: &mut Adam, tape: &mut Tape| {
            net.zero_grads();
            let out = net.forward_train(&[0.3, -0.2, 0.9], tape)[0];
            net.backward(tape, &[2.0 * (out - 0.5)]);
            opt.step(net, 1.0);
        };
        for _ in 0..5 {
            step(&mut net, &mut opt, &mut tape);
        }
        let restored = Adam::from_text(&opt.to_text(), net.param_count()).unwrap();
        assert_eq!(restored, opt);
        let mut net2 = Mlp::from_text(&net.to_text()).unwrap();
        let (mut opt2, mut tape2) = (restored, Tape::default());
        step(&mut net, &mut opt, &mut tape);
        step(&mut net2, &mut opt2, &mut tape2);
        assert_eq!(net.to_text(), net2.to_text(), "divergence after restore");
        assert_eq!(opt.to_text(), opt2.to_text());
    }

    #[test]
    fn state_text_rejects_corruption() {
        let opt = Adam::new(0.01, 3);
        assert!(Adam::from_text("", 3).is_err());
        assert!(
            Adam::from_text(&opt.to_text(), 4).is_err(),
            "param count mismatch"
        );
        let bad = opt.to_text().replace("tinynn-adam", "tinynn-sgd");
        assert!(Adam::from_text(&bad, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Mlp::new(&[2, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.01, 5);
        opt.step(&mut net, 1.0);
    }
}
