//! Dense (fully connected) layers with manual backprop.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::activation::Activation;

/// A dense layer `a = act(W x + b)` with gradient accumulators.
///
/// Weights are stored row-major: `w[o * fan_in + i]` connects input `i` to
/// output `o`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Input dimension.
    pub fan_in: usize,
    /// Output dimension.
    pub fan_out: usize,
    /// Weights, row-major `[fan_out × fan_in]`.
    pub w: Vec<f32>,
    /// Biases `[fan_out]`.
    pub b: Vec<f32>,
    /// Activation applied to the pre-activation.
    pub act: Activation,
    /// Accumulated weight gradients (same layout as `w`).
    #[serde(skip)]
    pub gw: Vec<f32>,
    /// Accumulated bias gradients.
    #[serde(skip)]
    pub gb: Vec<f32>,
}

impl Dense {
    /// Xavier/Glorot-uniform initialized layer.
    pub fn new<R: Rng + ?Sized>(
        fan_in: usize,
        fan_out: usize,
        act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(fan_in > 0 && fan_out > 0);
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let w = (0..fan_in * fan_out)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * limit)
            .collect();
        Dense {
            fan_in,
            fan_out,
            w,
            b: vec![0.0; fan_out],
            act,
            gw: vec![0.0; fan_in * fan_out],
            gb: vec![0.0; fan_out],
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass writing pre-activations into `z` and outputs into `a`.
    ///
    /// Uses the 8-lane [`crate::batch::dot8`] inner product — the same
    /// summation order as the fused batched forward, which keeps
    /// [`crate::Mlp::forward_batch`] bit-exact against this path.
    pub fn forward(&self, x: &[f32], z: &mut Vec<f32>, a: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.fan_in);
        z.clear();
        a.clear();
        for o in 0..self.fan_out {
            let row = &self.w[o * self.fan_in..(o + 1) * self.fan_in];
            let acc = crate::batch::dot8(row, x) + self.b[o];
            z.push(acc);
            a.push(self.act.apply(acc));
        }
    }

    /// Backward pass: given upstream `grad_a` (∂L/∂a), the cached input `x`,
    /// pre-activations `z`, and outputs `a`, accumulate parameter gradients
    /// and write ∂L/∂x into `grad_x`.
    pub fn backward(
        &mut self,
        x: &[f32],
        z: &[f32],
        a: &[f32],
        grad_a: &[f32],
        grad_x: &mut Vec<f32>,
    ) {
        debug_assert_eq!(grad_a.len(), self.fan_out);
        grad_x.clear();
        grad_x.resize(self.fan_in, 0.0);
        for o in 0..self.fan_out {
            let dz = grad_a[o] * self.act.derivative(z[o], a[o]);
            self.gb[o] += dz;
            let row_w = &self.w[o * self.fan_in..(o + 1) * self.fan_in];
            let row_g = &mut self.gw[o * self.fan_in..(o + 1) * self.fan_in];
            for i in 0..self.fan_in {
                row_g[i] += dz * x[i];
                grad_x[i] += dz * row_w[i];
            }
        }
    }

    /// Zero the gradient accumulators (allocating them if the layer was
    /// deserialized, since gradients are not persisted).
    pub fn zero_grads(&mut self) {
        self.gw.clear();
        self.gw.resize(self.w.len(), 0.0);
        self.gb.clear();
        self.gb.resize(self.b.len(), 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_computes_affine_map() {
        let mut l = Dense::new(2, 1, Activation::Identity, &mut StdRng::seed_from_u64(0));
        l.w = vec![2.0, -1.0];
        l.b = vec![0.5];
        let (mut z, mut a) = (vec![], vec![]);
        l.forward(&[3.0, 4.0], &mut z, &mut a);
        assert_eq!(a, vec![2.0 * 3.0 - 4.0 + 0.5]);
        assert_eq!(z, a);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut l = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = [0.3f32, -0.7, 1.1];
        // Loss = sum of outputs.
        let loss = |l: &Dense| -> f32 {
            let (mut z, mut a) = (vec![], vec![]);
            l.forward(&x, &mut z, &mut a);
            a.iter().sum()
        };
        let (mut z, mut a) = (vec![], vec![]);
        l.forward(&x, &mut z, &mut a);
        let mut gx = vec![];
        l.backward(&x, &z, &a, &[1.0, 1.0], &mut gx);

        let eps = 1e-3;
        for idx in 0..l.w.len() {
            let mut lp = l.clone();
            lp.w[idx] += eps;
            let mut lm = l.clone();
            lm.w[idx] -= eps;
            let num = (loss(&lp) - loss(&lm)) / (2.0 * eps);
            assert!(
                (num - l.gw[idx]).abs() < 1e-2,
                "w[{idx}]: numeric {num} vs analytic {}",
                l.gw[idx]
            );
        }
        for idx in 0..l.b.len() {
            let mut lp = l.clone();
            lp.b[idx] += eps;
            let mut lm = l.clone();
            lm.b[idx] -= eps;
            let num = (loss(&lp) - loss(&lm)) / (2.0 * eps);
            assert!((num - l.gb[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn backward_accumulates() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Dense::new(2, 2, Activation::Identity, &mut rng);
        let x = [1.0f32, 2.0];
        let (mut z, mut a, mut gx) = (vec![], vec![], vec![]);
        l.forward(&x, &mut z, &mut a);
        l.backward(&x, &z, &a, &[1.0, 0.0], &mut gx);
        let once = l.gw.clone();
        l.backward(&x, &z, &a, &[1.0, 0.0], &mut gx);
        for (g2, g1) in l.gw.iter().zip(&once) {
            assert!((g2 - 2.0 * g1).abs() < 1e-6);
        }
        l.zero_grads();
        assert!(l.gw.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn param_count() {
        let l = Dense::new(7, 32, Activation::Tanh, &mut StdRng::seed_from_u64(0));
        assert_eq!(l.param_count(), 7 * 32 + 32);
    }
}
