//! Activation functions.

use serde::{Deserialize, Serialize};

/// Element-wise activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent (the paper's MLP uses saturating hidden units).
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// No non-linearity (output layers / logits).
    Identity,
}

impl Activation {
    /// Apply the activation to a pre-activation value.
    #[inline]
    pub fn apply(&self, z: f32) -> f32 {
        match self {
            Activation::Tanh => z.tanh(),
            Activation::Relu => z.max(0.0),
            Activation::Identity => z,
        }
    }

    /// Derivative w.r.t. the pre-activation `z`, given both `z` and the
    /// already-computed output `a = apply(z)` (lets tanh reuse its output).
    #[inline]
    pub fn derivative(&self, z: f32, a: f32) -> f32 {
        match self {
            Activation::Tanh => 1.0 - a * a,
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_matches_std() {
        let a = Activation::Tanh;
        assert!((a.apply(0.5) - 0.5f32.tanh()).abs() < 1e-7);
        let out = a.apply(0.5);
        assert!((a.derivative(0.5, out) - (1.0 - out * out)).abs() < 1e-7);
    }

    #[test]
    fn relu_clamps_and_gates() {
        let a = Activation::Relu;
        assert_eq!(a.apply(-1.0), 0.0);
        assert_eq!(a.apply(2.0), 2.0);
        assert_eq!(a.derivative(-1.0, 0.0), 0.0);
        assert_eq!(a.derivative(2.0, 2.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [Activation::Tanh, Activation::Relu, Activation::Identity] {
            for &z in &[-1.2f32, -0.3, 0.4, 1.7] {
                let num = (act.apply(z + eps) - act.apply(z - eps)) / (2.0 * eps);
                let ana = act.derivative(z, act.apply(z));
                assert!((num - ana).abs() < 1e-2, "{act:?} at {z}: {num} vs {ana}");
            }
        }
    }
}
