//! Small numerical helpers shared by the RL layer: softmax families and
//! squared error.

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Numerically stable log-softmax.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let lse = logits.iter().map(|&l| (l - max).exp()).sum::<f32>().ln() + max;
    logits.iter().map(|&l| l - lse).collect()
}

/// Squared error and its gradient w.r.t. the prediction.
pub fn mse_grad(pred: f32, target: f32) -> (f32, f32) {
    let d = pred - target;
    (d * d, 2.0 * d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        let huge = softmax(&[1e30, -1e30]);
        assert!(huge.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = [0.5f32, -1.0, 2.0];
        let ls = log_softmax(&logits);
        let s = softmax(&logits);
        for (l, p) in ls.iter().zip(&s) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn mse_grad_is_correct() {
        let (loss, grad) = mse_grad(3.0, 1.0);
        assert_eq!(loss, 4.0);
        assert_eq!(grad, 4.0);
    }
}
