//! `tinynn` — a tiny, dependency-light neural-network library.
//!
//! The SchedInspector agent is a 938-parameter MLP (§3.1); the Rust RL
//! ecosystem is thin and `tch-rs` is outside the allowed dependency set, so
//! this crate implements exactly what the reproduction needs from scratch:
//! dense layers with manual backprop, tanh/ReLU activations, softmax
//! helpers, and Adam. Everything is deterministic under a seeded RNG and
//! serializable with serde (trained models are persisted as weights).
//!
//! ```
//! use tinynn::{Activation, Adam, Mlp, Tape};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! // The paper's inspector network: 7 features -> 32/16/8 -> 2 logits.
//! let mut net = Mlp::new(&[7, 32, 16, 8, 2], Activation::Tanh, Activation::Identity, &mut rng);
//! assert_eq!(net.param_count(), 938);
//!
//! let mut tape = Tape::default();
//! net.zero_grads();
//! let logits = net.forward_train(&[0.0; 7], &mut tape).to_vec();
//! net.backward(&tape, &[1.0, -1.0]);
//! let mut opt = Adam::new(1e-3, net.param_count());
//! opt.step(&mut net, 1.0);
//! assert_ne!(net.forward(&[0.0; 7]), logits);
//! ```

mod activation;
mod adam;
mod batch;
mod layer;
pub mod loss;
mod mlp;
mod quant;
mod serialize;

pub use activation::Activation;
pub use adam::Adam;
pub use batch::{dot8, BatchForwardScratch};
pub use layer::Dense;
pub use mlp::{ForwardScratch, Mlp, Tape};
pub use quant::{QuantScratch, QuantizedDense, QuantizedMlp};
