//! Plain-text persistence for networks.
//!
//! The allowed dependency set contains `serde` but no serialization format
//! crate, so trained models are persisted in a simple line-oriented text
//! format that is diff-friendly and stable across platforms:
//!
//! ```text
//! tinynn-mlp v1
//! layers <n>
//! layer <fan_in> <fan_out> <activation>
//! w <fan_in*fan_out floats>
//! b <fan_out floats>
//! ...
//! ```

use crate::activation::Activation;
use crate::layer::Dense;
use crate::mlp::Mlp;

fn act_name(a: Activation) -> &'static str {
    match a {
        Activation::Tanh => "tanh",
        Activation::Relu => "relu",
        Activation::Identity => "identity",
    }
}

fn act_parse(s: &str) -> Result<Activation, String> {
    match s {
        "tanh" => Ok(Activation::Tanh),
        "relu" => Ok(Activation::Relu),
        "identity" => Ok(Activation::Identity),
        other => Err(format!("unknown activation {other:?}")),
    }
}

pub(crate) fn write_floats(out: &mut String, prefix: &str, xs: &[f32]) {
    out.push_str(prefix);
    for x in xs {
        out.push(' ');
        // `{:e}` keeps full f32 precision compactly.
        out.push_str(&format!("{x:e}"));
    }
    out.push('\n');
}

pub(crate) fn parse_floats(line: &str, prefix: &str, expect: usize) -> Result<Vec<f32>, String> {
    let rest = line
        .strip_prefix(prefix)
        .ok_or_else(|| format!("expected line starting with {prefix:?}, got {line:?}"))?;
    let vals: Result<Vec<f32>, _> = rest.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|e| format!("bad float in {prefix:?} line: {e}"))?;
    if vals.len() != expect {
        return Err(format!(
            "{prefix:?} line: expected {expect} floats, got {}",
            vals.len()
        ));
    }
    Ok(vals)
}

impl Mlp {
    /// Serialize to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("tinynn-mlp v1\n");
        out.push_str(&format!("layers {}\n", self.layers().len()));
        for l in self.layers() {
            out.push_str(&format!(
                "layer {} {} {}\n",
                l.fan_in,
                l.fan_out,
                act_name(l.act)
            ));
            write_floats(&mut out, "w", &l.w);
            write_floats(&mut out, "b", &l.b);
        }
        out
    }

    /// Parse from the text format.
    pub fn from_text(text: &str) -> Result<Mlp, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty model file")?;
        if header.trim() != "tinynn-mlp v1" {
            return Err(format!("bad header {header:?}"));
        }
        let n: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("layers "))
            .ok_or("missing layers line")?
            .trim()
            .parse()
            .map_err(|e| format!("bad layer count: {e}"))?;
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            let spec = lines.next().ok_or("missing layer line")?;
            let mut parts = spec
                .strip_prefix("layer ")
                .ok_or_else(|| format!("expected layer line, got {spec:?}"))?
                .split_whitespace();
            let fan_in: usize = parts
                .next()
                .ok_or("missing fan_in")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            let fan_out: usize = parts
                .next()
                .ok_or("missing fan_out")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            let act = act_parse(parts.next().ok_or("missing activation")?)?;
            let w = parse_floats(lines.next().ok_or("missing w line")?, "w", fan_in * fan_out)?;
            let b = parse_floats(lines.next().ok_or("missing b line")?, "b", fan_out)?;
            layers.push(Dense {
                fan_in,
                fan_out,
                w,
                b,
                act,
                gw: vec![0.0; fan_in * fan_out],
                gb: vec![0.0; fan_out],
            });
        }
        Mlp::from_layers(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_outputs_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Mlp::new(
            &[7, 32, 16, 8, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let text = net.to_text();
        let back = Mlp::from_text(&text).unwrap();
        let x = [0.1f32, 0.9, 0.3, 0.0, 1.0, 0.5, 0.25];
        assert_eq!(net.forward(&x), back.forward(&x));
        assert_eq!(back.param_count(), 938);
    }

    #[test]
    fn rejects_corrupted_input() {
        assert!(Mlp::from_text("").is_err());
        assert!(Mlp::from_text("wrong header\nlayers 0\n").is_err());
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[2, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let text = net.to_text().replace("b ", "q ");
        assert!(Mlp::from_text(&text).is_err());
    }

    #[test]
    fn rejects_wrong_float_count() {
        let text = "tinynn-mlp v1\nlayers 1\nlayer 2 1 tanh\nw 1.0 2.0\nb 0.0\n";
        // w needs 2 floats for 2x1 — this is valid; now corrupt it.
        assert!(Mlp::from_text(text).is_ok());
        let bad = "tinynn-mlp v1\nlayers 1\nlayer 2 1 tanh\nw 1.0\nb 0.0\n";
        assert!(Mlp::from_text(bad).is_err());
    }
}
