//! Int8-quantized inference (`--quantized` serving path).
//!
//! Weights are quantized **per layer, symmetrically**: `w ≈ w_scale · qw`
//! with `qw ∈ [-127, 127]` and an explicit zero-point of 0. Activations are
//! quantized **dynamically per row** with an affine scheme
//! `x ≈ x_scale · (qx − x_zero_point)`, `qx ∈ [0, 255]`, computed from the
//! actual min/max of the row — the paper network's hidden activations are
//! tanh-bounded so the dynamic range is tight and cheap to scan (≤ 32
//! floats per row).
//!
//! The integer dot product uses the standard zero-point correction: with
//! per-row weight sums `rs_o = Σᵢ qw[o,i]` precomputed at quantization
//! time,
//!
//! ```text
//! Σᵢ w[o,i]·x[i] ≈ w_scale · x_scale · (Σᵢ qw[o,i]·qx[i] − zx·rs_o)
//! ```
//!
//! so the hot loop is a pure i32 multiply-accumulate. Accumulation is
//! exact in i32 (≤ 32 terms of magnitude ≤ 127·255 ≈ 2¹⁵ each), so the
//! only error sources are the two rounding steps — see the error-budget
//! test and DESIGN.md §12.

use crate::activation::Activation;
use crate::batch::BatchForwardScratch;
use crate::mlp::Mlp;

/// One dense layer with int8 weights.
#[derive(Debug, Clone)]
pub struct QuantizedDense {
    fan_in: usize,
    fan_out: usize,
    /// Quantized weights, row-major `[fan_out × fan_in]`, symmetric.
    qw: Vec<i8>,
    /// Weight dequantization scale: `w ≈ w_scale · qw`.
    pub w_scale: f32,
    /// Weight zero-point — always 0 (symmetric scheme); kept explicit so
    /// the wire/docs state the full affine tuple per layer.
    pub w_zero_point: i32,
    /// Per-output-row sums `Σᵢ qw[o,i]` for the zero-point correction.
    row_sums: Vec<i32>,
    /// Biases stay in f32 (938-parameter network — not worth quantizing).
    b: Vec<f32>,
    act: Activation,
}

/// An MLP with every layer quantized to int8.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
}

/// Reusable buffers for quantized inference: the widened-u8 input row plus
/// f32 ping-pong activations for the single-row path.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    qx: Vec<i32>,
    a: Vec<f32>,
    next: Vec<f32>,
}

/// Affine quantization parameters for one activation row.
#[derive(Debug, Clone, Copy)]
struct RowQuant {
    scale: f32,
    zero_point: i32,
}

/// Quantize one f32 row into `[0, 255]` codes (widened to i32 for the
/// integer dot product). The range always includes 0 so the zero-point is
/// representable.
fn quantize_row(x: &[f32], qx: &mut Vec<i32>) -> RowQuant {
    let mut lo = 0.0f32;
    let mut hi = 0.0f32;
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    let scale = if range > 0.0 { range / 255.0 } else { 1.0 };
    let zero_point = (-lo / scale).round().clamp(0.0, 255.0) as i32;
    qx.clear();
    for &v in x {
        let q = (v / scale).round() as i32 + zero_point;
        qx.push(q.clamp(0, 255));
    }
    RowQuant { scale, zero_point }
}

impl QuantizedDense {
    fn quantize(layer: &crate::Dense) -> QuantizedDense {
        let absmax = layer.w.iter().fold(0.0f32, |m, w| m.max(w.abs()));
        let w_scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
        let qw: Vec<i8> = layer
            .w
            .iter()
            .map(|&w| (w / w_scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        let row_sums = qw
            .chunks_exact(layer.fan_in)
            .map(|row| row.iter().map(|&q| q as i32).sum())
            .collect();
        QuantizedDense {
            fan_in: layer.fan_in,
            fan_out: layer.fan_out,
            qw,
            w_scale,
            w_zero_point: 0,
            row_sums,
            b: layer.b.clone(),
            act: layer.act,
        }
    }

    /// Integer forward for one row: `qx` is the quantized input, `out` the
    /// dequantized f32 activations.
    fn forward_row(&self, q: RowQuant, qx: &[i32], out: &mut Vec<f32>) {
        debug_assert_eq!(qx.len(), self.fan_in);
        out.clear();
        let dequant = self.w_scale * q.scale;
        for o in 0..self.fan_out {
            let row = &self.qw[o * self.fan_in..(o + 1) * self.fan_in];
            let mut acc = 0i32;
            for (&w, &x) in row.iter().zip(qx) {
                acc += w as i32 * x;
            }
            let corrected = acc - q.zero_point * self.row_sums[o];
            let z = dequant * corrected as f32 + self.b[o];
            out.push(self.act.apply(z));
        }
    }
}

impl QuantizedMlp {
    /// Quantize every layer of an f32 network.
    pub fn quantize(mlp: &Mlp) -> QuantizedMlp {
        QuantizedMlp {
            layers: mlp.layers().iter().map(QuantizedDense::quantize).collect(),
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.fan_in)
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.fan_out)
    }

    /// The quantized layers, in order.
    pub fn layers(&self) -> &[QuantizedDense] {
        &self.layers
    }

    /// Single-row quantized forward pass. The returned slice borrows from
    /// `scratch` and is valid until the next call.
    pub fn forward_scratch<'s>(&self, x: &[f32], scratch: &'s mut QuantScratch) -> &'s [f32] {
        scratch.a.clear();
        scratch.a.extend_from_slice(x);
        for layer in &self.layers {
            let q = quantize_row(&scratch.a, &mut scratch.qx);
            layer.forward_row(q, &scratch.qx, &mut scratch.next);
            std::mem::swap(&mut scratch.a, &mut scratch.next);
        }
        &scratch.a
    }

    /// Batched quantized forward over the rows packed into `scratch`
    /// (same packing protocol as [`Mlp::forward_batch`]). Activation
    /// quantization is per row, so results are identical to running
    /// [`QuantizedMlp::forward_scratch`] row by row.
    pub fn forward_batch<'s>(
        &self,
        scratch: &'s mut BatchForwardScratch,
        q: &mut QuantScratch,
    ) -> &'s [f32] {
        let mut in_dim = scratch.dim();
        debug_assert_eq!(in_dim, self.input_dim(), "batch width vs network input");
        for layer in &self.layers {
            let out_dim = layer.fan_out;
            let (x, y, rows, _) = scratch.parts();
            y.clear();
            y.resize(rows * out_dim, 0.0);
            for r in 0..rows {
                let xrow = &x[r * in_dim..(r + 1) * in_dim];
                let rq = quantize_row(xrow, &mut q.qx);
                layer.forward_row(rq, &q.qx, &mut q.next);
                y[r * out_dim..(r + 1) * out_dim].copy_from_slice(&q.next);
            }
            std::mem::swap(x, y);
            scratch.set_dim(out_dim);
            in_dim = out_dim;
        }
        scratch.matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ForwardScratch, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_net(seed: u64) -> Mlp {
        Mlp::new(
            &[7, 32, 16, 8, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut StdRng::seed_from_u64(seed),
        )
    }

    fn feature_row(r: usize, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| ((r * 13 + i * 5) as f32 * 0.219).sin() * 1.5)
            .collect()
    }

    /// Error budget (DESIGN.md §12): weight rounding ≤ ½·w_scale per
    /// element, activation rounding ≤ ½·x_scale; through the 7→32→16→8→2
    /// tanh network the compounded logit error stays well under 0.1 — the
    /// test enforces 0.1 as the hard budget across many seeds and inputs.
    #[test]
    fn quantized_logits_within_error_budget() {
        for seed in 0..5u64 {
            let net = paper_net(seed);
            let qnet = QuantizedMlp::quantize(&net);
            let mut fs = ForwardScratch::default();
            let mut qs = QuantScratch::default();
            for r in 0..50 {
                let x = feature_row(r, 7);
                let want = net.forward_scratch(&x, &mut fs).to_vec();
                let got = qnet.forward_scratch(&x, &mut qs);
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g - w).abs() < 0.1,
                        "seed {seed} row {r}: quantized {g} vs f32 {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_matches_single_row_exactly() {
        let net = paper_net(3);
        let qnet = QuantizedMlp::quantize(&net);
        let mut batch = BatchForwardScratch::default();
        let mut qs = QuantScratch::default();
        let mut qs2 = QuantScratch::default();
        let rows: Vec<Vec<f32>> = (0..33).map(|r| feature_row(r, 7)).collect();
        batch.clear(7);
        for row in &rows {
            batch.push_row(row);
        }
        let out = qnet.forward_batch(&mut batch, &mut qs).to_vec();
        for (r, row) in rows.iter().enumerate() {
            let want = qnet.forward_scratch(row, &mut qs2);
            let got = &out[r * 2..(r + 1) * 2];
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.to_bits(), w.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn quantize_row_round_trips_within_half_step() {
        let x = [-1.5f32, 0.0, 0.3, 2.0, -0.01];
        let mut qx = Vec::new();
        let q = quantize_row(&x, &mut qx);
        for (&orig, &code) in x.iter().zip(&qx) {
            let back = q.scale * (code - q.zero_point) as f32;
            assert!(
                (back - orig).abs() <= q.scale * 0.5 + 1e-6,
                "{orig} -> {code} -> {back}"
            );
        }
    }

    #[test]
    fn constant_and_zero_rows_are_handled() {
        let mut qx = Vec::new();
        let q = quantize_row(&[0.0; 4], &mut qx);
        assert!(qx.iter().all(|&c| c == q.zero_point));
        // Constant positive row: range includes 0, so the value is
        // representable to within half a step.
        let q = quantize_row(&[2.5; 4], &mut qx);
        let back = q.scale * (qx[0] - q.zero_point) as f32;
        assert!((back - 2.5).abs() <= q.scale * 0.5 + 1e-6);
    }

    #[test]
    fn zero_weight_layer_quantizes_without_nan() {
        let mut net = paper_net(0);
        // Zero out one layer's weights via visit_params on a clone path:
        // simplest is to rebuild from layers with w zeroed.
        let mut layers = net.layers().to_vec();
        for w in &mut layers[1].w {
            *w = 0.0;
        }
        net = Mlp::from_layers(layers).unwrap();
        let qnet = QuantizedMlp::quantize(&net);
        let mut qs = QuantScratch::default();
        let out = qnet.forward_scratch(&feature_row(0, 7), &mut qs);
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
