//! Fused batched inference.
//!
//! The serving hot path packs a micro-batch of feature vectors into one
//! contiguous row-major matrix and pushes the whole batch through the
//! network layer by layer. Compared with calling [`Mlp::forward_scratch`]
//! per request this amortises the weight-matrix traffic: each weight row is
//! loaded once per *block of rows* instead of once per request.
//!
//! The inner product is the 8-lane unrolled [`dot8`], which is also what
//! [`crate::Dense::forward`] uses — both paths therefore share one
//! summation order and the fused batch forward is **bit-exact** against
//! `forward_scratch`, not merely close. Std-only, no intrinsics: the lanes
//! are plain `f32` accumulators that the compiler can keep in registers
//! (and auto-vectorise where the target allows).

use crate::mlp::Mlp;

/// Rows per cache block in the fused matmul. Inside a block the output
/// loop is outermost, so one weight row (≤ 32 floats for the paper
/// network) stays hot in L1 while it is applied to every row of the block;
/// the block bound keeps the input rows resident too.
const ROW_BLOCK: usize = 64;

/// 8-lane unrolled dot product.
///
/// Eight independent accumulator lanes break the sequential-add dependency
/// chain, then reduce pairwise in a fixed order. The tail (`len % 8`) is
/// added sequentially after the lane reduction. Every caller that needs
/// bit-identical results with another path must funnel through this
/// function — the summation order *is* the contract.
#[inline]
pub fn dot8(w: &[f32], x: &[f32]) -> f32 {
    debug_assert_eq!(w.len(), x.len());
    let mut lanes = [0.0f32; 8];
    let wc = w.chunks_exact(8);
    let xc = x.chunks_exact(8);
    let (wr, xr) = (wc.remainder(), xc.remainder());
    for (wv, xv) in wc.zip(xc) {
        for (lane, (wi, xi)) in lanes.iter_mut().zip(wv.iter().zip(xv)) {
            *lane += wi * xi;
        }
    }
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for (wi, xi) in wr.iter().zip(xr) {
        acc += wi * xi;
    }
    acc
}

/// Reusable buffers for [`Mlp::forward_batch`]: the packed input matrix
/// and a ping-pong output matrix. After the first batch at a given size
/// the buffers are warm and a forward pass allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct BatchForwardScratch {
    /// Current activation matrix, row-major `[rows × dim]`.
    x: Vec<f32>,
    /// Scratch output matrix for the layer being computed.
    y: Vec<f32>,
    rows: usize,
    dim: usize,
}

impl BatchForwardScratch {
    /// Start packing a new batch of `dim`-wide rows.
    pub fn clear(&mut self, dim: usize) {
        self.x.clear();
        self.rows = 0;
        self.dim = dim;
    }

    /// Append one feature row to the batch.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row width must match clear(dim)");
        self.x.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of rows packed so far (or, after a forward pass, in the
    /// output matrix).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when no rows are packed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Read access to the current matrix (inputs before a forward pass,
    /// outputs after).
    pub fn matrix(&self) -> &[f32] {
        &self.x[..self.rows * self.dim]
    }

    /// Width of the current matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    pub(crate) fn parts(&mut self) -> (&mut Vec<f32>, &mut Vec<f32>, usize, usize) {
        (&mut self.x, &mut self.y, self.rows, self.dim)
    }

    pub(crate) fn set_dim(&mut self, dim: usize) {
        self.dim = dim;
    }
}

impl Mlp {
    /// Fused batched forward pass over the rows packed into `scratch`.
    ///
    /// Returns the output matrix, row-major `[rows × output_dim]`, borrowed
    /// from `scratch` until the next call. Row `r` of the result is
    /// bit-identical to `forward_scratch` on row `r` of the input (both use
    /// [`dot8`], so the summation order matches exactly).
    pub fn forward_batch<'s>(&self, scratch: &'s mut BatchForwardScratch) -> &'s [f32] {
        let mut in_dim = scratch.dim();
        debug_assert_eq!(in_dim, self.input_dim(), "batch width vs network input");
        for layer in self.layers() {
            let out_dim = layer.fan_out;
            let (x, y, rows, _) = scratch.parts();
            y.clear();
            y.resize(rows * out_dim, 0.0);
            for block_start in (0..rows).step_by(ROW_BLOCK) {
                let block_end = (block_start + ROW_BLOCK).min(rows);
                for o in 0..out_dim {
                    let wrow = &layer.w[o * layer.fan_in..(o + 1) * layer.fan_in];
                    let bias = layer.b[o];
                    for r in block_start..block_end {
                        let xrow = &x[r * in_dim..(r + 1) * in_dim];
                        y[r * out_dim + o] = layer.act.apply(dot8(wrow, xrow) + bias);
                    }
                }
            }
            std::mem::swap(x, y);
            scratch.set_dim(out_dim);
            in_dim = out_dim;
        }
        let rows = scratch.rows();
        &scratch.x[..rows * in_dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, ForwardScratch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(sizes: &[usize], seed: u64) -> Mlp {
        Mlp::new(
            sizes,
            Activation::Tanh,
            Activation::Identity,
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn dot8_matches_reference_on_awkward_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 100] {
            let w: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
            let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.11).cos()).collect();
            let reference: f64 = w
                .iter()
                .zip(&x)
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            let got = dot8(&w, &x);
            assert!(
                (got as f64 - reference).abs() < 1e-4,
                "len {len}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn forward_batch_bit_exact_vs_forward_scratch() {
        // The paper network plus awkward widths that exercise dot8 tails.
        for (sizes, seed) in [
            (&[7usize, 32, 16, 8, 2][..], 0u64),
            (&[5, 9, 3][..], 1),
            (&[16, 8, 4][..], 2),
        ] {
            let net = mlp(sizes, seed);
            let mut batch = BatchForwardScratch::default();
            let mut single = ForwardScratch::default();
            let rows: Vec<Vec<f32>> = (0..67)
                .map(|r| {
                    (0..sizes[0])
                        .map(|i| ((r * 31 + i * 7) as f32 * 0.173).sin() * 2.0)
                        .collect()
                })
                .collect();
            batch.clear(sizes[0]);
            for row in &rows {
                batch.push_row(row);
            }
            let out = net.forward_batch(&mut batch).to_vec();
            let out_dim = *sizes.last().unwrap();
            for (r, row) in rows.iter().enumerate() {
                let want = net.forward_scratch(row, &mut single);
                let got = &out[r * out_dim..(r + 1) * out_dim];
                for (g, w) in got.iter().zip(want) {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "row {r}: batch {g} vs scratch {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_scratch_reuse_across_sizes() {
        let net = mlp(&[4, 8, 2], 3);
        let mut batch = BatchForwardScratch::default();
        let mut single = ForwardScratch::default();
        for rows in [1usize, 64, 5, 128, 1] {
            batch.clear(4);
            let inputs: Vec<Vec<f32>> = (0..rows)
                .map(|r| (0..4).map(|i| (r + i) as f32 * 0.25 - 1.0).collect())
                .collect();
            for row in &inputs {
                batch.push_row(row);
            }
            let out = net.forward_batch(&mut batch).to_vec();
            for (r, row) in inputs.iter().enumerate() {
                assert_eq!(
                    &out[r * 2..r * 2 + 2],
                    net.forward_scratch(row, &mut single)
                );
            }
        }
    }

    #[test]
    fn empty_batch_yields_empty_output() {
        let net = mlp(&[4, 8, 2], 3);
        let mut batch = BatchForwardScratch::default();
        batch.clear(4);
        assert!(batch.is_empty());
        assert!(net.forward_batch(&mut batch).is_empty());
    }
}
