//! Property tests: analytic gradients match finite differences for random
//! network shapes, inputs, and output gradients — the backbone guarantee
//! of the training stack.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::{Activation, Mlp, Tape};

fn net_strategy() -> impl Strategy<Value = (Vec<usize>, u64)> {
    (prop::collection::vec(1usize..6, 2..4), any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gradients_match_finite_differences(
        (mut sizes, seed) in net_strategy(),
        input_seed in any::<u64>(),
    ) {
        // Keep dimensions small so finite differences stay cheap.
        for s in &mut sizes {
            *s = (*s).clamp(1, 5);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Mlp::new(&sizes, Activation::Tanh, Activation::Identity, &mut rng);
        let mut irng = StdRng::seed_from_u64(input_seed);
        use rand::RngExt;
        let x: Vec<f32> = (0..sizes[0]).map(|_| irng.random::<f32>() * 2.0 - 1.0).collect();
        let gout: Vec<f32> =
            (0..*sizes.last().unwrap()).map(|_| irng.random::<f32>() * 2.0 - 1.0).collect();

        let mut tape = Tape::default();
        net.zero_grads();
        net.forward_train(&x, &mut tape);
        net.backward(&tape, &gout);
        let analytic: Vec<f32> = {
            let mut v = Vec::new();
            net.visit_params(|_, _, g| v.push(g));
            v
        };

        let loss = |n: &Mlp| -> f32 {
            n.forward(&x).iter().zip(&gout).map(|(o, g)| o * g).sum()
        };
        let eps = 1e-2f32;
        let snapshot = net.clone();
        for p in (0..analytic.len()).step_by(3) {
            let mut plus = snapshot.clone();
            plus.visit_params(|i, w, _| if i == p { *w += eps });
            let mut minus = snapshot.clone();
            minus.visit_params(|i, w, _| if i == p { *w -= eps });
            let num = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            prop_assert!(
                (num - analytic[p]).abs() < 0.05 + 0.05 * num.abs().max(analytic[p].abs()),
                "param {}: numeric {} vs analytic {}", p, num, analytic[p]
            );
        }
    }

    /// Text serialization round-trips arbitrary trained-ish networks.
    #[test]
    fn text_roundtrip((mut sizes, seed) in net_strategy()) {
        for s in &mut sizes {
            *s = (*s).clamp(1, 5);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&sizes, Activation::Relu, Activation::Identity, &mut rng);
        let back = Mlp::from_text(&net.to_text()).unwrap();
        let x = vec![0.37f32; sizes[0]];
        prop_assert_eq!(net.forward(&x), back.forward(&x));
    }
}
