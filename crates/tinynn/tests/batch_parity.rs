//! Property tests: the fused batched forward is bit-exact against the
//! scalar scratch path (shared `dot8` summation order), and the int8
//! quantized path stays inside its error budget for arbitrary networks,
//! batch sizes, and inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tinynn::{Activation, BatchForwardScratch, ForwardScratch, Mlp, QuantScratch, QuantizedMlp};

fn net_strategy() -> impl Strategy<Value = (Vec<usize>, u64)> {
    (prop::collection::vec(1usize..34, 2..5), any::<u64>())
}

fn build_net(sizes: &[usize], seed: u64) -> Mlp {
    Mlp::new(
        sizes,
        Activation::Tanh,
        Activation::Identity,
        &mut StdRng::seed_from_u64(seed),
    )
}

fn random_rows(dim: usize, rows: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows)
        .map(|_| (0..dim).map(|_| rng.random::<f32>() * 6.0 - 3.0).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn forward_batch_bit_exact_vs_scalar(
        (sizes, seed) in net_strategy(),
        rows in 1usize..80,
        input_seed in any::<u64>(),
    ) {
        let net = build_net(&sizes, seed);
        let inputs = random_rows(sizes[0], rows, input_seed);
        let mut batch = BatchForwardScratch::default();
        let mut single = ForwardScratch::default();
        batch.clear(sizes[0]);
        for row in &inputs {
            batch.push_row(row);
        }
        let out = net.forward_batch(&mut batch).to_vec();
        let out_dim = *sizes.last().unwrap();
        for (r, row) in inputs.iter().enumerate() {
            let want = net.forward_scratch(row, &mut single);
            let got = &out[r * out_dim..(r + 1) * out_dim];
            for (g, w) in got.iter().zip(want) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "row {} differs: {} vs {}", r, g, w);
            }
        }
    }

    #[test]
    fn quantized_forward_within_epsilon(
        (sizes, seed) in net_strategy(),
        rows in 1usize..40,
        input_seed in any::<u64>(),
    ) {
        let net = build_net(&sizes, seed);
        let qnet = QuantizedMlp::quantize(&net);
        let inputs = random_rows(sizes[0], rows, input_seed);
        let mut batch = BatchForwardScratch::default();
        let mut single = ForwardScratch::default();
        let mut qs = QuantScratch::default();
        batch.clear(sizes[0]);
        for row in &inputs {
            batch.push_row(row);
        }
        let out = qnet.forward_batch(&mut batch, &mut qs).to_vec();
        let out_dim = *sizes.last().unwrap();
        // Bound scales with depth/width: untrained random tanh nets with
        // inputs in [-3, 3] keep logits O(1); two rounding steps per layer
        // compound but stay far below this envelope.
        let eps = 0.05 * sizes.len() as f32;
        for (r, row) in inputs.iter().enumerate() {
            let want = net.forward_scratch(row, &mut single);
            let got = &out[r * out_dim..(r + 1) * out_dim];
            for (g, w) in got.iter().zip(want) {
                prop_assert!(
                    (g - w).abs() < eps,
                    "row {}: quantized {} vs f32 {} (eps {})", r, g, w, eps
                );
            }
        }
    }
}
