//! Result output: aligned console tables and CSV files under `results/`.

use std::io::Write as _;
use std::path::PathBuf;

/// Directory experiment CSVs are written to (override with
/// `SCHEDINSPECTOR_RESULTS`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SCHEDINSPECTOR_RESULTS").unwrap_or_else(|_| "results".into());
    PathBuf::from(dir)
}

/// Write a CSV file (header + rows) under the results directory; returns
/// the path written. Failures are reported but non-fatal (experiments keep
/// printing to stdout).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> Option<PathBuf> {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(name);
    let mut out = match std::fs::File::create(&path) {
        Ok(f) => std::io::BufWriter::new(f),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            return None;
        }
    };
    let _ = writeln!(out, "{header}");
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    let _ = out.flush();
    Some(path)
}

/// Print an aligned table: a header row then data rows, column widths fit
/// to content.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        println!("{s}");
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_is_written() {
        std::env::set_var(
            "SCHEDINSPECTOR_RESULTS",
            std::env::temp_dir().join("si-results"),
        );
        let p = write_csv("test.csv", "a,b", &["1,2".into(), "3,4".into()]).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(p).ok();
        std::env::remove_var("SCHEDINSPECTOR_RESULTS");
    }
}
