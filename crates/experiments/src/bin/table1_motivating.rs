//! **Table 1** — the motivating example (§2.1, Fig. 1): scheduling two
//! small job sequences on a 5-node cluster with SJF, with and without a
//! (scripted) inspector that rejects J0's first scheduling decision.
//!
//! Case (b) reproduces the paper's numbers exactly. Case (a) is adapted:
//! the paper's Fig. 1(a) narrative mixes two scheduler semantics (J1 is
//! simultaneously committed at t0 *and* re-prioritized against the
//! later-arriving J2); under the committing semantics the paper's own §3.2
//! prescribes ("the simulator will wait until enough resources are
//! released"), the closest consistent configuration is used and both
//! metric improvements still hold. See EXPERIMENTS.md.

use experiments::{print_table, write_csv};
use policies::Sjf;
use simhpc::{InspectorHook, Observation, SimConfig, SimResult, Simulator};
use workload::Job;

const MIN: f64 = 60.0; // the figure's timeline is in minutes

/// Reject the first inspection of job `target`, accept everything else.
struct RejectOnce {
    target: u64,
    done: bool,
}

impl InspectorHook for RejectOnce {
    fn inspect(&mut self, obs: &Observation) -> bool {
        if !self.done && obs.job.id == self.target {
            self.done = true;
            return true;
        }
        false
    }
}

fn job(id: u64, submit_min: f64, exe_min: f64, procs: u32) -> Job {
    Job::new(id, submit_min * MIN, exe_min * MIN, exe_min * MIN, procs)
}

/// Case (a): the selected shortest job can run immediately.
fn case_a() -> Vec<Job> {
    vec![
        job(0, 0.0, 4.0, 2), // Jp — preliminary job, excluded from metrics
        job(1, 0.0, 5.0, 3), // J0
        job(2, 0.0, 5.0, 2), // J1
        job(3, 1.0, 3.0, 2), // J2
    ]
}

/// Case (b): the selected shortest job lacks resources (paper-exact).
fn case_b() -> Vec<Job> {
    vec![
        job(0, 0.0, 3.0, 2), // Jp
        job(1, 0.0, 5.0, 4), // J0
        job(2, 1.0, 3.0, 2), // J1
    ]
}

/// Metrics over the sequence excluding the preliminary job Jp (id 0).
fn metrics(result: &SimResult) -> (f64, f64) {
    let jobs: Vec<_> = result.outcomes.iter().filter(|o| o.id != 0).collect();
    let wait = jobs.iter().map(|o| o.wait()).sum::<f64>() / jobs.len() as f64 / MIN;
    let bsld = jobs.iter().map(|o| o.bsld()).sum::<f64>() / jobs.len() as f64;
    (wait, bsld)
}

fn run(jobs: &[Job], inspect: bool) -> (f64, f64) {
    let sim = Simulator::new(5, SimConfig::default());
    let mut policy = Sjf;
    let result = if inspect {
        let mut hook = RejectOnce {
            target: 1,
            done: false,
        };
        sim.run_inspected(jobs, &mut policy, &mut hook)
    } else {
        sim.run(jobs, &mut policy)
    };
    metrics(&result)
}

fn main() {
    println!("Table 1: performance metrics of the motivating example (minutes)\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let paper = [
        ("Case(a)-NoInspect", 3.0, 1.77),
        ("Case(a)-Inspected", 3.0, 1.53),
        ("Case(b)-NoInspect", 5.0, 2.45),
        ("Case(b)-Inspected", 2.0, 1.40),
    ];
    let runs = [
        run(&case_a(), false),
        run(&case_a(), true),
        run(&case_b(), false),
        run(&case_b(), true),
    ];
    for (i, (name, p_wait, p_bsld)) in paper.iter().enumerate() {
        let (wait, bsld) = runs[i];
        rows.push(vec![
            name.to_string(),
            format!("{p_wait:.2}"),
            format!("{wait:.2}"),
            format!("{p_bsld:.2}"),
            format!("{bsld:.2}"),
        ]);
        csv.push(format!("{name},{p_wait},{wait:.4},{p_bsld},{bsld:.4}"));
    }
    print_table(
        &[
            "case",
            "wait(paper)",
            "wait(ours)",
            "bsld(paper)",
            "bsld(ours)",
        ],
        &rows,
    );
    let (wa0, ba0) = runs[0];
    let (wa1, ba1) = runs[1];
    let (wb0, bb0) = runs[2];
    let (wb1, bb1) = runs[3];
    println!();
    println!("case (a): inspector improves bsld {ba0:.2} -> {ba1:.2}, wait {wa0:.2} -> {wa1:.2}");
    println!("case (b): inspector improves bsld {bb0:.2} -> {bb1:.2}, wait {wb0:.2} -> {wb1:.2}");
    assert!(ba1 < ba0, "case (a): inspection must improve bsld");
    assert!(
        bb1 < bb0 && wb1 < wb0,
        "case (b): inspection must improve both metrics"
    );
    if let Some(p) = write_csv(
        "table1_motivating.csv",
        "case,wait_paper,wait_ours,bsld_paper,bsld_ours",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
