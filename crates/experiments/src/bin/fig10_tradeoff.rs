//! **Figure 10** — trade-offs among metrics: inspectors trained on bsld,
//! evaluated on bsld, mbsld, *and* utilization, for SJF and F1 across all
//! four traces. The paper's findings: bsld training does not starve long
//! jobs (mbsld also improves or holds) and costs at most ~1% utilization
//! (4.3% worst case on Lublin/F1).

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec, TRACES};
use policies::PolicyKind;
use simhpc::Metric;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("fig10_tradeoff");
    println!("Figure 10: bsld-trained inspector evaluated on bsld / mbsld / util\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for policy in [PolicyKind::Sjf, PolicyKind::F1] {
        for trace in TRACES {
            let out = train_combo_traced(&ComboSpec::new(trace, policy), &scale, seed, &telemetry);
            let rep = out.evaluate(&scale, seed ^ 0xF10);
            let b = (
                rep.mean_base(Metric::Bsld),
                rep.mean_inspected(Metric::Bsld),
            );
            let m = (
                rep.mean_base(Metric::MaxBsld),
                rep.mean_inspected(Metric::MaxBsld),
            );
            let u = (
                rep.mean_base_util() * 100.0,
                rep.mean_inspected_util() * 100.0,
            );
            println!(
                "[{:>4} on {:<8}] bsld {:.1}->{:.1}  mbsld {:.0}->{:.0}  util {:.2}%->{:.2}%",
                policy.name(),
                trace,
                b.0,
                b.1,
                m.0,
                m.1,
                u.0,
                u.1
            );
            rows.push(vec![
                policy.name().to_string(),
                trace.to_string(),
                format!("{:.1} -> {:.1}", b.0, b.1),
                format!("{:.0} -> {:.0}", m.0, m.1),
                format!("{:.2}% -> {:.2}%", u.0, u.1),
            ]);
            csv.push(format!(
                "{},{trace},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                policy.name(),
                b.0,
                b.1,
                m.0,
                m.1,
                u.0 / 100.0,
                u.1 / 100.0
            ));
        }
    }
    println!("\nPaper: mbsld does not regress (no starving); util drops <1% typically.\n");
    print_table(&["policy", "trace", "bsld", "mbsld", "util"], &rows);
    if let Some(p) = write_csv(
        "fig10_tradeoff.csv",
        "policy,trace,bsld_base,bsld_insp,mbsld_base,mbsld_insp,util_base,util_insp",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
