//! **Extension (ablation)** — the two inspection knobs the paper fixes
//! empirically in §4.1: `MAX_INTERVAL` (600 s) and `MAX_REJECTION_TIMES`
//! (72). Sweeps each knob on [SJF, SDSC-SP2, bsld] and reports the
//! converged improvement and rejection ratio, quantifying how sensitive
//! the result is to the chosen values.

use experiments::{parse_args, print_table, train_combo, write_csv, ComboSpec};
use inspector::{InspectorConfig, Trainer};
use policies::PolicyKind;
use simhpc::SimConfig;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("ext_ablation_knobs");
    println!("Ablation: MAX_INTERVAL and MAX_REJECTION_TIMES (SJF, SDSC-SP2, bsld)\n");
    let spec = ComboSpec::new("SDSC-SP2", PolicyKind::Sjf);
    let mut rows = Vec::new();
    let mut csv = Vec::new();

    let mut run = |label: String, sim: SimConfig| {
        // Same pipeline as train_combo but with a custom SimConfig.
        let trace = experiments::load_trace(&spec.trace, &scale, seed);
        let (train, _) = trace.split(0.2);
        let config = InspectorConfig {
            sim,
            batch_size: scale.batch,
            seq_len: scale.seq_len,
            epochs: scale.epochs,
            seed,
            ..Default::default()
        };
        let mut trainer = Trainer::builder(train)
            .policy(PolicyKind::Sjf)
            .config(config)
            .telemetry(telemetry.clone())
            .build()
            .expect("swept knobs stay in the valid range");
        let history = trainer.train();
        let conv = history.converged_improvement(5);
        let rej = history.converged_rejection_ratio(5);
        println!(
            "[{label:<28}] converged {conv:+.2}, rejection ratio {:.1}%",
            rej * 100.0
        );
        rows.push(vec![
            label.clone(),
            format!("{conv:+.2}"),
            format!("{:.1}%", rej * 100.0),
        ]);
        csv.push(format!("{label},{conv:.4},{rej:.4}"));
    };

    for interval in [60.0, 600.0, 3600.0] {
        run(
            format!("MAX_INTERVAL={interval:.0}s cap=72"),
            SimConfig {
                max_interval: interval,
                max_rejections: 72,
                backfill: false,
            },
        );
    }
    for cap in [4u32, 16, 72] {
        if cap == 72 {
            continue; // covered by the 600 s row above
        }
        run(
            format!("MAX_INTERVAL=600s cap={cap}"),
            SimConfig {
                max_interval: 600.0,
                max_rejections: cap,
                backfill: false,
            },
        );
    }

    println!();
    print_table(
        &["configuration", "converged improvement", "rejection ratio"],
        &rows,
    );
    println!(
        "\nThe paper's defaults (600 s, 72) bound a rejected job's extra wait\nby ~12 h; the sweep shows how gains shrink when retries are too\nfrequent (tiny intervals waste inspections) or too rare."
    );
    if let Some(p) = write_csv(
        "ext_ablation_knobs.csv",
        "config,improvement,rejection_ratio",
        &csv,
    ) {
        println!("wrote {}", p.display());
    }
    let _ = train_combo; // re-exported harness is exercised by other binaries
}
