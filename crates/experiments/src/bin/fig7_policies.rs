//! **Figure 7** — training SchedInspector with the remaining base
//! scheduling policies (FCFS, LCFS, SRF, SAF) on SDSC-SP2/bsld, tracking
//! both the bsld improvement and the **rejection ratio**. The paper's key
//! observation: FCFS gains nothing (future arrivals cannot change its
//! decision) and its rejection ratio collapses toward a few percent, while
//! LCFS/SRF/SAF converge to solid gains with 35–50% rejection ratios.

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec};
use policies::PolicyKind;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("fig7_policies");
    println!("Figure 7: training with FCFS/LCFS/SRF/SAF (SDSC-SP2, bsld)\n");
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    let mut fcfs_rej = 1.0f64;
    let mut others_min_gain = f64::INFINITY;
    for policy in [
        PolicyKind::Fcfs,
        PolicyKind::Lcfs,
        PolicyKind::Srf,
        PolicyKind::Saf,
    ] {
        let spec = ComboSpec::new("SDSC-SP2", policy);
        let out = train_combo_traced(&spec, &scale, seed, &telemetry);
        for r in &out.history.records {
            csv.push(format!(
                "{},{},{:.4},{:.4},{:.4}",
                policy.name(),
                r.epoch,
                r.improvement,
                r.improvement_pct,
                r.rejection_ratio
            ));
        }
        let conv = out.history.converged_improvement(5);
        let rej = out.history.converged_rejection_ratio(5);
        println!(
            "[{:>4}] converged improvement {conv:+.2}, rejection ratio {:.1}%",
            policy.name(),
            rej * 100.0
        );
        rows.push(vec![
            policy.name().to_string(),
            format!("{conv:+.2}"),
            format!("{:.1}%", rej * 100.0),
        ]);
        if policy == PolicyKind::Fcfs {
            fcfs_rej = rej;
        } else {
            others_min_gain = others_min_gain.min(conv);
        }
    }
    println!(
        "\nPaper's finding: FCFS converges to a near-zero rejection ratio\n(≈5%) and no improvement; LCFS/SRF/SAF converge to positive gains.\nMeasured: FCFS rejection ratio {:.1}%, min other gain {:+.2}.\n",
        fcfs_rej * 100.0,
        others_min_gain
    );
    print_table(
        &["policy", "converged improvement", "rejection ratio"],
        &rows,
    );
    if let Some(p) = write_csv(
        "fig7_policies.csv",
        "policy,epoch,improvement,improvement_pct,rejection_ratio",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
