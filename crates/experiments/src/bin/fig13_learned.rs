//! **Figure 13 / §5** — what SchedInspector learns: train [SJF, bsld,
//! SDSC-SP2], schedule the whole trace with the trained model while
//! recording every inspection, then compare the CDFs of the input features
//! between rejected samples and all samples. The paper collected 24M
//! samples with ≈30% rejected and observed: more rejections for jobs with
//! short waits, long runtimes, high resource demands; and a hard cap on
//! the queue-delays feature.

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec};
use inspector::analysis::{
    collect_decisions, feature_cdf, rejection_fraction, MANUAL_FEATURE_NAMES,
};
use policies::PolicyKind;
use simhpc::Simulator;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("fig13_learned");
    println!("Figure 13: feature CDFs of rejected vs. total samples [SJF, bsld, SDSC-SP2]\n");
    let spec = ComboSpec::new("SDSC-SP2", PolicyKind::Sjf);
    let out = train_combo_traced(&spec, &scale, seed, &telemetry);

    // Schedule the full trace (train + test) start to finish, as §5 does.
    let full = {
        let mut jobs = out.train.jobs.clone();
        jobs.extend(out.test.jobs.iter().copied());
        jobs
    };
    let sim = Simulator::new(out.train.procs, out.sim);
    let samples = collect_decisions(&out.inspector, &sim, &full, &out.factory);
    let frac = rejection_fraction(&samples);
    println!(
        "collected {} samples, {} rejected ({:.1}%; paper: ~30%)\n",
        samples.len(),
        samples.iter().filter(|s| s.rejected).count(),
        frac * 100.0
    );

    let points = 21;
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    for (idx, name) in MANUAL_FEATURE_NAMES.iter().enumerate() {
        let all = feature_cdf(&samples, idx, points, false);
        let rej = feature_cdf(&samples, idx, points, true);
        for (i, ((x, a), (_, r))) in all.iter().zip(&rej).enumerate() {
            csv.push(format!("{name},{i},{x:.3},{a:.4},{r:.4}"));
        }
        // Summarize the shift: median of rejected vs. all samples.
        let med = |cdf: &[(f32, f32)]| {
            cdf.iter()
                .find(|&&(_, y)| y >= 0.5)
                .map(|&(x, _)| x)
                .unwrap_or(1.0)
        };
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", med(&all)),
            format!("{:.3}", med(&rej)),
            match med(&rej).partial_cmp(&med(&all)).unwrap() {
                std::cmp::Ordering::Less => "rejects smaller values".to_string(),
                std::cmp::Ordering::Greater => "rejects larger values".to_string(),
                std::cmp::Ordering::Equal => "no shift".to_string(),
            },
        ]);
    }
    print_table(
        &["feature", "median(all)", "median(rejected)", "tendency"],
        &rows,
    );
    println!(
        "\nPaper's reading: rejected jobs have shorter waits, longer runtimes,\nhigher resource requests; queue delays show a hard rejection cap."
    );
    if let Some(p) = write_csv(
        "fig13_learned.csv",
        "feature,point,x,cdf_all,cdf_rejected",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
