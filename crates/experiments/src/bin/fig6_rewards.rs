//! **Figure 6** — impact of the reward function: native (raw difference)
//! vs. win/loss (sign only) vs. the paper's percentage reward. Setting:
//! SJF on SDSC-SP2 optimizing bsld; the y-axis is the *absolute* bsld
//! difference, which nominally favors the native reward — the paper's
//! counter-intuitive result is that percentage still wins.

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec};
use inspector::RewardKind;
use policies::PolicyKind;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("fig6_rewards");
    println!("Figure 6: reward-function ablation (SJF, SDSC-SP2, bsld)\n");
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    for reward in [
        RewardKind::Native,
        RewardKind::WinLoss,
        RewardKind::Percentage,
    ] {
        let spec = ComboSpec {
            reward,
            ..ComboSpec::new("SDSC-SP2", PolicyKind::Sjf)
        };
        let out = train_combo_traced(&spec, &scale, seed, &telemetry);
        for r in &out.history.records {
            csv.push(format!(
                "{},{},{:.4},{:.4},{:.4}",
                reward.name(),
                r.epoch,
                r.improvement,
                r.improvement_pct,
                r.rejection_ratio
            ));
        }
        let conv = out.history.converged_improvement(5);
        let rej = out.history.converged_rejection_ratio(5);
        println!(
            "[{:>10}] converged improvement {conv:+.2}, rejection ratio {:.1}%",
            reward.name(),
            rej * 100.0
        );
        rows.push(vec![
            reward.name().to_string(),
            format!("{conv:+.2}"),
            format!("{:.1}%", rej * 100.0),
        ]);
    }
    println!("\nPaper's finding: percentage reward converges best despite the\ny-axis measuring exactly what the native reward optimizes.\n");
    print_table(
        &["reward", "converged improvement", "rejection ratio"],
        &rows,
    );
    if let Some(p) = write_csv(
        "fig6_rewards.csv",
        "reward,epoch,improvement,improvement_pct,rejection_ratio",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
