//! **Table 4** — cross-trace generalization: a model trained on SDSC-SP2
//! applied to every other trace Y, compared against the base scheduler
//! (Base→Y) and the trace's own model (Y→Y). Setting: SJF, bsld. The
//! paper finds SDSC-SP2→Y beats the base everywhere, while Y→Y is best.

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec, TRACES};
use inspector::{evaluate, SchedInspector};
use policies::PolicyKind;
use simhpc::Metric;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("table4_cross_trace");
    println!("Table 4: cross-trace generalization (SJF, bsld)\n");

    // Train the transfer model once on SDSC-SP2.
    let sdsc_spec = ComboSpec::new("SDSC-SP2", PolicyKind::Sjf);
    let sdsc = train_combo_traced(&sdsc_spec, &scale, seed, &telemetry);
    let transfer: &SchedInspector = &sdsc.inspector;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for trace_name in TRACES {
        // Y→Y model (reuses the SDSC-SP2 training when Y is SDSC-SP2).
        let own = if trace_name == "SDSC-SP2" {
            None
        } else {
            Some(train_combo_traced(
                &ComboSpec::new(trace_name, PolicyKind::Sjf),
                &scale,
                seed,
                &telemetry,
            ))
        };
        let target = own.as_ref().unwrap_or(&sdsc);
        let eval_seed = seed ^ 0x7AB4;
        // Transfer inspectors carry SDSC-SP2 normalization; the target
        // trace's machine differs, which is exactly the stress the paper
        // applies. Evaluate both inspectors on the same test sequences.
        let rep_transfer = evaluate(
            transfer,
            &target.test,
            &target.factory,
            target.sim,
            scale.eval_seqs,
            scale.eval_len,
            eval_seed,
            0,
        );
        let rep_own = evaluate(
            &target.inspector,
            &target.test,
            &target.factory,
            target.sim,
            scale.eval_seqs,
            scale.eval_len,
            eval_seed,
            0,
        );
        let base = rep_own.mean_base(Metric::Bsld);
        let x_to_y = rep_transfer.mean_inspected(Metric::Bsld);
        let y_to_y = rep_own.mean_inspected(Metric::Bsld);
        println!(
            "[{trace_name:<8}] Base->Y {base:.2}, 'SDSC-SP2'->Y {x_to_y:.2}, Y->Y {y_to_y:.2}"
        );
        rows.push(vec![
            trace_name.to_string(),
            format!("{base:.2}"),
            format!("{x_to_y:.2}"),
            format!("{y_to_y:.2}"),
        ]);
        csv.push(format!("{trace_name},{base:.4},{x_to_y:.4},{y_to_y:.4}"));
    }
    println!("\nPaper: SDSC-SP2->Y outperforms the base everywhere; Y->Y is best.\n");
    print_table(&["trace Y", "Base->Y", "'SDSC-SP2'->Y", "Y->Y"], &rows);
    if let Some(p) = write_csv(
        "table4_cross_trace.csv",
        "trace,base,sdsc_to_y,y_to_y",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
