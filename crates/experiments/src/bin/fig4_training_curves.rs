//! **Figure 4** — training curves of SchedInspector on the four job traces
//! using SJF and F1 as base schedulers, optimizing bsld. The y-axis is the
//! per-epoch bsld improvement over the base scheduler (larger than 0 means
//! the inspector wins).

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec, TRACES};
use policies::PolicyKind;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("fig4_training_curves");
    println!(
        "Figure 4: training curves (bsld improvement per epoch), {} epochs x {} trajectories\n",
        scale.epochs, scale.batch
    );
    let mut csv = Vec::new();
    let mut summary = Vec::new();
    for policy in [PolicyKind::Sjf, PolicyKind::F1] {
        for trace in TRACES {
            let spec = ComboSpec::new(trace, policy);
            let out = train_combo_traced(&spec, &scale, seed, &telemetry);
            for r in &out.history.records {
                csv.push(format!(
                    "{},{trace},{},{:.4},{:.4},{:.4},{:.4}",
                    policy.name(),
                    r.epoch,
                    r.improvement,
                    r.improvement_pct,
                    r.base_metric,
                    r.rejection_ratio
                ));
            }
            let first = out
                .history
                .records
                .first()
                .map(|r| r.improvement)
                .unwrap_or(0.0);
            let conv = out.history.converged_improvement(5);
            let conv_pct: f64 = {
                let recs = &out.history.records;
                let tail = &recs[recs.len().saturating_sub(5)..];
                tail.iter().map(|r| r.improvement_pct).sum::<f64>() / tail.len().max(1) as f64
            };
            println!(
                "[{:>4} on {:<8}] first-epoch {first:+.2}, converged {conv:+.2} ({:+.1}%)",
                policy.name(),
                trace,
                conv_pct * 100.0
            );
            summary.push((policy.name(), trace, first, conv, conv_pct));
        }
    }
    println!("\nConvergence summary (paper: all combos converge above 0):\n");
    let rows: Vec<Vec<String>> = summary
        .iter()
        .map(|(p, t, first, conv, pct)| {
            vec![
                p.to_string(),
                t.to_string(),
                format!("{first:+.2}"),
                format!("{conv:+.2}"),
                format!("{:+.1}%", pct * 100.0),
            ]
        })
        .collect();
    print_table(
        &["policy", "trace", "first epoch", "converged", "converged %"],
        &rows,
    );
    if let Some(p) = write_csv(
        "fig4_training_curves.csv",
        "policy,trace,epoch,improvement,improvement_pct,base_bsld,rejection_ratio",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
