//! **Extension (load sweep)** — how SchedInspector's benefit scales with
//! offered load. One inspector is trained on SDSC-SP2 at its native load,
//! then evaluated on load-scaled variants of the held-out split (the
//! standard load-scaling methodology: compress/stretch inter-arrival
//! gaps). The paper's §5 intuition predicts gains grow with congestion —
//! rejections only pay off when the queue has alternatives.

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec};
use inspector::evaluate;
use policies::PolicyKind;
use simhpc::Metric;
use workload::tools::scale_load;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("ext_load_sweep");
    println!("Load sweep: one SDSC-SP2 inspector across offered-load variants\n");
    let out = train_combo_traced(
        &ComboSpec::new("SDSC-SP2", PolicyKind::Sjf),
        &scale,
        seed,
        &telemetry,
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for factor in [0.5, 0.75, 1.0, 1.25, 1.5] {
        let test = scale_load(&out.test, factor).expect("scaled trace");
        let rep = evaluate(
            &out.inspector,
            &test,
            &out.factory,
            out.sim,
            scale.eval_seqs,
            scale.eval_len,
            seed ^ 0x10AD,
            0,
        );
        let base = rep.mean_base(Metric::Bsld);
        let insp = rep.mean_inspected(Metric::Bsld);
        let pct = rep.improvement_pct(Metric::Bsld) * 100.0;
        println!(
            "[load x{factor:<4}] base bsld {base:>8.2} -> inspected {insp:>8.2} ({pct:+.1}%), util {:.1}%",
            rep.mean_base_util() * 100.0
        );
        rows.push(vec![
            format!("x{factor}"),
            format!("{base:.2}"),
            format!("{insp:.2}"),
            format!("{pct:+.1}%"),
            format!("{:.1}%", rep.mean_base_util() * 100.0),
        ]);
        csv.push(format!(
            "{factor},{base:.4},{insp:.4},{:.4}",
            rep.mean_base_util()
        ));
    }
    println!();
    print_table(
        &[
            "load",
            "base bsld",
            "inspected bsld",
            "improvement",
            "base util",
        ],
        &rows,
    );
    println!("\nExpected shape: gains concentrate at higher loads, where queues\nhold real alternatives for the delayed decision.");
    if let Some(p) = write_csv(
        "ext_load_sweep.csv",
        "factor,base_bsld,inspected_bsld,base_util",
        &csv,
    ) {
        println!("wrote {}", p.display());
    }
}
