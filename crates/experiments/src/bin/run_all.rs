//! Run every experiment binary in paper order, forwarding the scale flags
//! (`--quick`, `--paper`, `--epochs N`, `--seed N`).

use std::process::Command;

const EXPERIMENTS: [&str; 15] = [
    "table1_motivating",
    "table2_traces",
    "table3_policies",
    "fig4_training_curves",
    "fig5_features",
    "fig6_rewards",
    "fig7_policies",
    "fig8_test_perf",
    "table4_cross_trace",
    "fig9_metrics",
    "fig10_tradeoff",
    "fig11_backfill",
    "table5_utilization",
    "fig12_slurm",
    "fig13_learned",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failed = Vec::new();
    for name in EXPERIMENTS {
        println!(
            "\n=== {name} {}\n",
            "=".repeat(60usize.saturating_sub(name.len()))
        );
        let status = Command::new(exe_dir.join(name)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failed.push(name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e} (build with `cargo build --release -p experiments` first)");
                failed.push(name);
            }
        }
    }
    println!("\n=== cost_inference {}\n", "=".repeat(46));
    let _ = Command::new(exe_dir.join("cost_inference"))
        .args(&args)
        .status();
    if failed.is_empty() {
        println!("\nAll experiments completed. CSVs are under results/.");
    } else {
        eprintln!("\nFailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
