//! **Figure 12** — SchedInspector on a realistic scheduler: the Slurm
//! multifactor priority policy (age + fairshare + job attribute +
//! partition, all weights 1000) with backfilling, on SDSC-SP2 (the trace
//! with user/queue information), optimizing bsld. The paper measures a
//! 24.7% bsld improvement (82.9 → 62.4) at a 0.49% utilization cost.

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec};
use simhpc::Metric;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("fig12_slurm");
    println!("Figure 12: SchedInspector working with Slurm multifactor (+backfilling)\n");
    let spec = ComboSpec {
        policy: None, // Slurm multifactor
        backfill: true,
        ..ComboSpec::new("SDSC-SP2", policies::PolicyKind::Sjf)
    };
    let out = train_combo_traced(&spec, &scale, seed, &telemetry);

    let mut csv = Vec::new();
    for r in &out.history.records {
        csv.push(format!(
            "{},{:.4},{:.4},{:.4}",
            r.epoch, r.improvement, r.improvement_pct, r.rejection_ratio
        ));
    }
    let rep = out.evaluate(&scale, seed ^ 0xF12);
    let base = rep.mean_base(Metric::Bsld);
    let insp = rep.mean_inspected(Metric::Bsld);
    let pct = rep.improvement_pct(Metric::Bsld) * 100.0;
    let u_base = rep.mean_base_util() * 100.0;
    let u_insp = rep.mean_inspected_util() * 100.0;

    print_table(
        &["quantity", "paper", "ours"],
        &[
            vec!["bsld original".into(), "82.9".into(), format!("{base:.1}")],
            vec!["bsld inspected".into(), "62.4".into(), format!("{insp:.1}")],
            vec![
                "bsld improvement".into(),
                "24.7%".into(),
                format!("{pct:.1}%"),
            ],
            vec![
                "util original".into(),
                "79.31%".into(),
                format!("{u_base:.2}%"),
            ],
            vec![
                "util inspected".into(),
                "78.82%".into(),
                format!("{u_insp:.2}%"),
            ],
            vec![
                "util reduction".into(),
                "0.49%".into(),
                format!("{:.2}%", u_base - u_insp),
            ],
        ],
    );
    println!(
        "\nTraining converged to {:+.1}% relative improvement, rejection ratio {:.1}%.",
        {
            let recs = &out.history.records;
            let tail = &recs[recs.len().saturating_sub(5)..];
            tail.iter().map(|r| r.improvement_pct).sum::<f64>() / tail.len().max(1) as f64 * 100.0
        },
        out.history.converged_rejection_ratio(5) * 100.0
    );
    if let Some(p) = write_csv(
        "fig12_slurm.csv",
        "epoch,improvement,improvement_pct,rejection_ratio",
        &csv,
    ) {
        println!("wrote {}", p.display());
    }
    if let Some(p) = write_csv(
        "fig12_slurm_eval.csv",
        "bsld_base,bsld_inspected,util_base,util_inspected",
        &[format!(
            "{base:.4},{insp:.4},{:.4},{:.4}",
            u_base / 100.0,
            u_insp / 100.0
        )],
    ) {
        println!("wrote {}", p.display());
    }
}
