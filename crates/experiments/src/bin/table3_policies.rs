//! **Table 3** — the base batch-job scheduling policies and their priority
//! functions, plus a sanity run of every policy over the same sequence to
//! show they produce genuinely different schedules.

use experiments::{load_trace, parse_args, print_table, write_csv};
use policies::PolicyKind;
use simhpc::{Metric, SimConfig, Simulator};

fn main() {
    let (scale, seed) = parse_args();
    println!("Table 3: base batch job scheduling policies\n");
    let rows: Vec<Vec<String>> = PolicyKind::ALL
        .into_iter()
        .map(|k| vec![k.name().to_string(), k.priority_formula().to_string()])
        .collect();
    print_table(&["abbr", "priority"], &rows);

    // Exercise each policy on the same sampled SDSC-SP2 sequences.
    let trace = load_trace("SDSC-SP2", &scale, seed);
    let sim = Simulator::new(trace.procs, SimConfig::default());
    let mut sampler = workload::SequenceSampler::new(trace.clone(), scale.eval_len, seed ^ 0x7AB3);
    let sequences = sampler.sample_many(scale.eval_seqs);
    println!(
        "\nMean over {} SDSC-SP2 sequences of {} jobs under each policy:\n",
        sequences.len(),
        scale.eval_len
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for kind in PolicyKind::ALL {
        let mut bsld = 0.0;
        let mut wait = 0.0;
        let mut mbsld = 0.0;
        let mut util = 0.0;
        for (_, jobs) in &sequences {
            let mut p = kind.build();
            let r = sim.run(jobs, p.as_mut());
            bsld += r.metric(Metric::Bsld);
            wait += r.metric(Metric::Wait);
            mbsld += r.metric(Metric::MaxBsld);
            util += r.util();
        }
        let n = sequences.len() as f64;
        let (bsld, wait, mbsld, util) = (bsld / n, wait / n, mbsld / n, util / n);
        rows.push(vec![
            kind.name().to_string(),
            format!("{bsld:.2}"),
            format!("{wait:.0}"),
            format!("{mbsld:.2}"),
            format!("{:.1}%", util * 100.0),
        ]);
        csv.push(format!(
            "{},{bsld:.4},{wait:.1},{mbsld:.4},{util:.4}",
            kind.name()
        ));
    }
    print_table(&["policy", "bsld", "wait(s)", "mbsld", "util"], &rows);
    if let Some(p) = write_csv("table3_policies.csv", "policy,bsld,wait,mbsld,util", &csv) {
        println!("\nwrote {}", p.display());
    }
}
