//! **Extension (paper §7 future work)** — "incorporate SchedInspector with
//! intelligent scheduling policies, such as RLScheduler". Trains an
//! RLScheduler-style learned selector, then trains a SchedInspector *on
//! top of* the frozen selector, and compares four schedulers on held-out
//! SDSC-SP2 sequences:
//!
//! 1. SJF (heuristic baseline),
//! 2. SJF + SchedInspector (the paper's system),
//! 3. RLScheduler (learned selector, the §6 "disruptive" alternative),
//! 4. RLScheduler + SchedInspector (the future-work combination).

use std::sync::Arc;

use experiments::{load_trace, parse_args, print_table, write_csv};
use inspector::{evaluate, factory_for, InspectorConfig, PolicyFactory, Trainer};
use policies::PolicyKind;
use rlsched::{SelectorConfig, SelectorTrainer};
use simhpc::Metric;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("ext_rlscheduler");
    println!("Extension: SchedInspector on top of an RLScheduler-style selector\n");
    let trace = load_trace("SDSC-SP2", &scale, seed);
    let (train, test) = trace.split(0.2);

    // --- 1. train the learned selector ---
    println!(
        "training RLScheduler selector ({} epochs x {} trajectories)...",
        scale.epochs, scale.batch
    );
    let sel_config = SelectorConfig {
        batch_size: scale.batch,
        seq_len: scale.seq_len,
        epochs: scale.epochs,
        seed,
        ..Default::default()
    };
    let mut sel_trainer = SelectorTrainer::new(train.clone(), sel_config);
    let curve = sel_trainer.train();
    let last_rewards: f32 = curve
        .iter()
        .rev()
        .take(5)
        .map(|e| e.mean_reward)
        .sum::<f32>()
        / 5.0;
    println!("selector converged mean reward vs SJF: {last_rewards:+.3}");
    let frozen = sel_trainer.scheduler();

    // --- 2. train inspectors over both base policies ---
    let insp_config = InspectorConfig {
        batch_size: scale.batch,
        seq_len: scale.seq_len,
        epochs: scale.epochs,
        seed: seed ^ 0x11,
        ..Default::default()
    };
    let sjf_factory = factory_for(PolicyKind::Sjf);
    println!("training SchedInspector over SJF...");
    let mut sjf_insp = Trainer::builder(train.clone())
        .factory(sjf_factory.clone())
        .config(insp_config)
        .telemetry(telemetry.clone())
        .build()
        .expect("valid inspector config");
    sjf_insp.train();

    let rl_factory: PolicyFactory = {
        let template = frozen.clone();
        Arc::new(move || Box::new(template.clone()))
    };
    println!("training SchedInspector over the frozen RLScheduler...");
    let mut rl_insp = Trainer::builder(train.clone())
        .factory(rl_factory.clone())
        .config(insp_config)
        .telemetry(telemetry.clone())
        .build()
        .expect("valid inspector config");
    rl_insp.train();

    // --- 3. evaluate the four schedulers on identical held-out sequences ---
    let eval_seed = seed ^ 0xE07;
    let sjf_rep = evaluate(
        &sjf_insp.inspector(),
        &test,
        &sjf_factory,
        insp_config.sim,
        scale.eval_seqs,
        scale.eval_len,
        eval_seed,
        0,
    );
    let rl_rep = evaluate(
        &rl_insp.inspector(),
        &test,
        &rl_factory,
        insp_config.sim,
        scale.eval_seqs,
        scale.eval_len,
        eval_seed,
        0,
    );

    let rows = vec![
        vec![
            "SJF".into(),
            format!("{:.2}", sjf_rep.mean_base(Metric::Bsld)),
            format!("{:.2}%", sjf_rep.mean_base_util() * 100.0),
        ],
        vec![
            "SJF + Inspector".into(),
            format!("{:.2}", sjf_rep.mean_inspected(Metric::Bsld)),
            format!("{:.2}%", sjf_rep.mean_inspected_util() * 100.0),
        ],
        vec![
            "RLScheduler".into(),
            format!("{:.2}", rl_rep.mean_base(Metric::Bsld)),
            format!("{:.2}%", rl_rep.mean_base_util() * 100.0),
        ],
        vec![
            "RLScheduler + Inspector".into(),
            format!("{:.2}", rl_rep.mean_inspected(Metric::Bsld)),
            format!("{:.2}%", rl_rep.mean_inspected_util() * 100.0),
        ],
    ];
    println!();
    print_table(&["scheduler", "bsld", "util"], &rows);
    println!(
        "\nInspector gain over SJF: {:+.1}%; over RLScheduler: {:+.1}%",
        sjf_rep.improvement_pct(Metric::Bsld) * 100.0,
        rl_rep.improvement_pct(Metric::Bsld) * 100.0
    );
    let csv = vec![format!(
        "{:.4},{:.4},{:.4},{:.4}",
        sjf_rep.mean_base(Metric::Bsld),
        sjf_rep.mean_inspected(Metric::Bsld),
        rl_rep.mean_base(Metric::Bsld),
        rl_rep.mean_inspected(Metric::Bsld)
    )];
    if let Some(p) = write_csv(
        "ext_rlscheduler.csv",
        "sjf,sjf_inspected,rlsched,rlsched_inspected",
        &csv,
    ) {
        println!("wrote {}", p.display());
    }
}
