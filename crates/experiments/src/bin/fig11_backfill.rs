//! **Figure 11** — training with EASY backfilling enabled, toward bsld and
//! wait, on SDSC-SP2 with SJF and F1. The paper finds smaller but still
//! positive converged improvements (~10%): backfilling already captures
//! much of the opportunity the inspector exploits.

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec};
use policies::PolicyKind;
use simhpc::Metric;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("fig11_backfill");
    println!("Figure 11: training with backfilling enabled (SDSC-SP2)\n");
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    for metric in [Metric::Bsld, Metric::Wait] {
        for policy in [PolicyKind::Sjf, PolicyKind::F1] {
            let spec = ComboSpec {
                metric,
                backfill: true,
                ..ComboSpec::new("SDSC-SP2", policy)
            };
            let out = train_combo_traced(&spec, &scale, seed, &telemetry);
            for r in &out.history.records {
                csv.push(format!(
                    "{},{},{},{:.4},{:.4},{:.4}",
                    metric.name(),
                    policy.name(),
                    r.epoch,
                    r.improvement,
                    r.improvement_pct,
                    r.rejection_ratio
                ));
            }
            let recs = &out.history.records;
            let tail = &recs[recs.len().saturating_sub(5)..];
            let conv_pct =
                tail.iter().map(|r| r.improvement_pct).sum::<f64>() / tail.len().max(1) as f64;
            let rej = out.history.converged_rejection_ratio(5);
            println!(
                "[{:>4} / {:>4} +bf] converged relative improvement {:+.1}%, rejection ratio {:.1}%",
                metric.name(),
                policy.name(),
                conv_pct * 100.0,
                rej * 100.0
            );
            rows.push(vec![
                metric.name().to_string(),
                policy.name().to_string(),
                format!("{:+.1}%", conv_pct * 100.0),
                format!("{:.1}%", rej * 100.0),
            ]);
        }
    }
    println!("\nPaper: ~10% converged improvements with backfilling enabled.\n");
    print_table(
        &[
            "metric",
            "policy",
            "converged improvement",
            "rejection ratio",
        ],
        &rows,
    );
    if let Some(p) = write_csv(
        "fig11_backfill.csv",
        "metric,policy,epoch,improvement,improvement_pct,rejection_ratio",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
