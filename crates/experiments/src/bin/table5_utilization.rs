//! **Table 5** — system utilization with and without SchedInspector, for
//! SJF and F1 on every trace, both with and without backfilling. The paper
//! reports barely noticeable differences (Δ ≈ ±1%, worst −4.33% on
//! Lublin/F1 without backfilling).

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec, TRACES};
use policies::PolicyKind;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("table5_utilization");
    println!("Table 5: system utilization with/without SchedInspector\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for backfill in [false, true] {
        println!(
            "Scheduling {} backfilling:",
            if backfill { "with" } else { "without" }
        );
        for trace in TRACES {
            let mut cells = vec![if backfill {
                format!("{trace} +bf")
            } else {
                trace.to_string()
            }];
            for policy in [PolicyKind::Sjf, PolicyKind::F1] {
                let spec = ComboSpec {
                    backfill,
                    ..ComboSpec::new(trace, policy)
                };
                let out = train_combo_traced(&spec, &scale, seed, &telemetry);
                let rep = out.evaluate(&scale, seed ^ 0x7AB5);
                let base = rep.mean_base_util() * 100.0;
                let insp = rep.mean_inspected_util() * 100.0;
                println!(
                    "  [{:>4} on {:<8}] BASE {base:.2}%  INSP {insp:.2}%  d {:+.2}%",
                    policy.name(),
                    trace,
                    insp - base
                );
                cells.push(format!("{base:.2}%"));
                cells.push(format!("{insp:.2}%"));
                cells.push(format!("{:+.2}%", insp - base));
                csv.push(format!(
                    "{trace},{},{},{:.4},{:.4}",
                    policy.name(),
                    backfill,
                    base / 100.0,
                    insp / 100.0
                ));
            }
            rows.push(cells);
        }
    }
    println!();
    print_table(
        &[
            "trace", "SJF base", "SJF insp", "SJF d", "F1 base", "F1 insp", "F1 d",
        ],
        &rows,
    );
    println!("\nPaper: deltas are within about ±1% (worst case -4.33%, Lublin/F1).");
    if let Some(p) = write_csv(
        "table5_utilization.csv",
        "trace,policy,backfill,util_base,util_inspected",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
