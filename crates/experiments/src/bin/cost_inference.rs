//! **§4.6** — computational cost: per-decision inference latency (the
//! paper reports 0.7 ms through TensorFlow; the Rust MLP is far cheaper)
//! and wall-clock training cost per epoch (paper: ~35 min total on their
//! setup).

use std::time::Instant;

use experiments::{parse_args, print_table, train_combo_traced, ComboSpec, Scale};
use inspector::{FeatureBuilder, FeatureMode, Normalizer, SchedInspector};
use policies::PolicyKind;
use rlcore::BinaryPolicy;
use simhpc::{Metric, Observation, QueueEntry};
use workload::Job;

fn observation() -> Observation {
    Observation {
        now: 5_000.0,
        job: Job::new(1, 4_000.0, 3_600.0, 7_200.0, 16),
        wait: 1_000.0,
        rejections: 3,
        max_rejections: 72,
        free_procs: 40,
        total_procs: 128,
        runnable: true,
        backfill_enabled: false,
        backfillable: 0,
        queue: (0..32)
            .map(|i| QueueEntry {
                id: i,
                wait: i as f64 * 60.0,
                estimate: 600.0 + i as f64 * 120.0,
                procs: 1 + (i % 16) as u32,
            })
            .collect(),
    }
}

fn main() {
    let (_, seed) = parse_args();
    let telemetry = experiments::telemetry_for("cost_inference");
    println!("§4.6: computational cost of SchedInspector\n");

    // ---- inference latency ----
    let fb = FeatureBuilder {
        mode: FeatureMode::Manual,
        metric: Metric::Bsld,
        norm: Normalizer::new(128, 432_000.0),
    };
    let agent = SchedInspector::new(BinaryPolicy::new(fb.dim(), seed), fb);
    let obs = observation();
    // Warm up, then time a large batch of full inspections (feature build
    // + forward pass), which is what each scheduling decision costs.
    let mut sink = 0u64;
    for _ in 0..1_000 {
        sink += agent.inspect(&obs) as u64;
    }
    let n = 1_000_000u64;
    let start = Instant::now();
    for _ in 0..n {
        sink += agent.inspect(&obs) as u64;
    }
    let per_decision = start.elapsed().as_secs_f64() / n as f64;
    std::hint::black_box(sink);

    // ---- training cost ----
    let scale = Scale {
        epochs: 3,
        ..Scale::quick()
    };
    let t0 = Instant::now();
    let out = train_combo_traced(
        &ComboSpec::new("SDSC-SP2", PolicyKind::Sjf),
        &scale,
        seed,
        &telemetry,
    );
    let per_epoch = t0.elapsed().as_secs_f64() / out.history.records.len() as f64;

    print_table(
        &["quantity", "paper", "ours"],
        &[
            vec![
                "inference per decision".into(),
                "0.7 ms".into(),
                format!("{:.3} µs", per_decision * 1e6),
            ],
            vec![
                format!("training epoch ({}x{} jobs)", scale.batch, scale.seq_len),
                "-".into(),
                format!("{per_epoch:.2} s"),
            ],
            vec![
                "full training (paper setup)".into(),
                "~35 min".into(),
                format!(
                    "~{:.1} min at paper scale (est.)",
                    per_epoch
                        * 80.0
                        * (100.0 / scale.batch as f64)
                        * (128.0 / scale.seq_len as f64)
                        / 60.0
                ),
            ],
        ],
    );
    println!(
        "\nInference is {}x below the paper's 0.7 ms budget — negligible for\nbatch job scheduling, as §4.6 requires.",
        (0.0007 / per_decision).round()
    );
    assert!(
        per_decision < 0.0007,
        "inference must beat the paper's 0.7 ms budget"
    );
}
