//! **Figure 8** — scheduling performance of the trained inspector on
//! held-out job sequences: 50 random 256-job sequences per trace from the
//! test split, scheduled by SJF/F1 and their inspector-enabled
//! counterparts. The paper reports box-and-whisker distributions with the
//! averages on top (improvements from 13.6% to 91.6%).

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec, TRACES};
use policies::PolicyKind;
use simhpc::Metric;

fn quartiles(mut xs: Vec<f64>) -> (f64, f64, f64) {
    xs.sort_by(|a, b| a.total_cmp(b));
    let q = |f: f64| xs[((xs.len() - 1) as f64 * f).round() as usize];
    (q(0.25), q(0.5), q(0.75))
}

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("fig8_test_perf");
    println!(
        "Figure 8: test performance, {} sequences x {} jobs per trace (bsld)\n",
        scale.eval_seqs, scale.eval_len
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for policy in [PolicyKind::Sjf, PolicyKind::F1] {
        for trace in TRACES {
            let spec = ComboSpec::new(trace, policy);
            let out = train_combo_traced(&spec, &scale, seed, &telemetry);
            let rep = out.evaluate(&scale, seed ^ 0xF18);
            let base = rep.mean_base(Metric::Bsld);
            let insp = rep.mean_inspected(Metric::Bsld);
            let pct = rep.improvement_pct(Metric::Bsld) * 100.0;
            let (b_q1, b_med, b_q3) =
                quartiles(rep.series(Metric::Bsld).iter().map(|s| s.0).collect());
            let (i_q1, i_med, i_q3) =
                quartiles(rep.series(Metric::Bsld).iter().map(|s| s.1).collect());
            rows.push(vec![
                policy.name().to_string(),
                trace.to_string(),
                format!("{base:.1}"),
                format!("{insp:.1}"),
                format!("{pct:+.1}%"),
                format!("{b_q1:.1}/{b_med:.1}/{b_q3:.1}"),
                format!("{i_q1:.1}/{i_med:.1}/{i_q3:.1}"),
            ]);
            for (i, (b, v)) in rep.series(Metric::Bsld).iter().enumerate() {
                csv.push(format!("{},{trace},{i},{b:.4},{v:.4}", policy.name()));
            }
            println!(
                "[{:>4} on {:<8}] base {base:.1} -> inspected {insp:.1} ({pct:+.1}%)",
                policy.name(),
                trace
            );
        }
    }
    println!("\nPaper: bsld improves 13.6% (F1/CTC-SP2) to 91.6% (SJF/Lublin).\n");
    print_table(
        &[
            "policy",
            "trace",
            "base",
            "inspected",
            "improve",
            "base q1/med/q3",
            "insp q1/med/q3",
        ],
        &rows,
    );
    if let Some(p) = write_csv(
        "fig8_test_perf.csv",
        "policy,trace,seq,base_bsld,inspected_bsld",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
