//! **Table 2** — the job traces in use and their key statistics: cluster
//! size, mean arrival interval, mean estimated runtime, mean requested
//! processors. Our traces are synthetic substitutes calibrated to the
//! paper's published values (DESIGN.md §5); this binary verifies the
//! calibration.

use experiments::{load_trace, parse_args, print_table, write_csv, TRACES};
use workload::profiles::profile_by_name;

fn main() {
    let (scale, seed) = parse_args();
    println!(
        "Table 2: job trace statistics ({} jobs per trace, seed {seed})\n",
        scale.trace_jobs
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    // Paper order: CTC-SP2, SDSC-SP2, HPC2N, Lublin.
    for name in ["CTC-SP2", "SDSC-SP2", "HPC2N", "Lublin"] {
        let profile = profile_by_name(name).unwrap();
        let trace = load_trace(name, &scale, seed);
        let s = trace.stats();
        rows.push(vec![
            name.to_string(),
            format!("{}", s.cluster_size),
            format!("{:.0}/{:.0}", s.mean_interval, profile.mean_interval),
            format!("{:.0}/{:.0}", s.mean_estimate, profile.mean_estimate),
            format!("{:.1}/{:.1}", s.mean_procs, profile.mean_procs),
            format!("{:.2}", s.offered_load),
        ]);
        csv.push(format!(
            "{name},{},{:.1},{},{:.1},{},{:.2},{},{:.3}",
            s.cluster_size,
            s.mean_interval,
            profile.mean_interval,
            s.mean_estimate,
            profile.mean_estimate,
            s.mean_procs,
            profile.mean_procs,
            s.offered_load
        ));
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(
            rel(s.mean_interval, profile.mean_interval) < 0.05,
            "{name}: interval drifted"
        );
        assert!(
            rel(s.mean_estimate, profile.mean_estimate) < 0.12,
            "{name}: estimate drifted"
        );
        assert!(
            rel(s.mean_procs, profile.mean_procs) < 0.15,
            "{name}: procs drifted"
        );
    }
    print_table(
        &[
            "trace",
            "cluster",
            "interval ours/paper",
            "est ours/paper",
            "res ours/paper",
            "load",
        ],
        &rows,
    );
    assert_eq!(TRACES.len(), 4);
    if let Some(p) = write_csv(
        "table2_traces.csv",
        "trace,cluster,interval,interval_paper,est,est_paper,res,res_paper,offered_load",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
