//! **Figure 5** — impact of the feature-building mechanism: the paper's
//! manually built features vs. compacted features (job + cluster only) vs.
//! native features (raw state). Setting: SJF on SDSC-SP2 optimizing bsld.

use experiments::{parse_args, print_table, train_combo_traced, write_csv, ComboSpec};
use inspector::FeatureMode;
use policies::PolicyKind;

fn main() {
    let (scale, seed) = parse_args();
    let telemetry = experiments::telemetry_for("fig5_features");
    println!("Figure 5: feature-building ablation (SJF, SDSC-SP2, bsld)\n");
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    for (mode, label) in [
        (FeatureMode::Manual, "manual"),
        (FeatureMode::Compacted, "compacted"),
        (FeatureMode::Native, "native"),
    ] {
        let spec = ComboSpec {
            features: mode,
            ..ComboSpec::new("SDSC-SP2", PolicyKind::Sjf)
        };
        let out = train_combo_traced(&spec, &scale, seed, &telemetry);
        for r in &out.history.records {
            csv.push(format!(
                "{label},{},{:.4},{:.4},{:.4}",
                r.epoch, r.improvement, r.improvement_pct, r.rejection_ratio
            ));
        }
        let conv = out.history.converged_improvement(5);
        let rej = out.history.converged_rejection_ratio(5);
        println!(
            "[{label:>9}] converged improvement {conv:+.2}, rejection ratio {:.1}%",
            rej * 100.0
        );
        rows.push(vec![
            label.to_string(),
            format!("{conv:+.2}"),
            format!("{:.1}%", rej * 100.0),
        ]);
    }
    println!(
        "\nPaper's finding: manual > compacted > native (native fails to\nconverge to a positive value; it learns to never reject).\n"
    );
    print_table(
        &["features", "converged improvement", "rejection ratio"],
        &rows,
    );
    if let Some(p) = write_csv(
        "fig5_features.csv",
        "features,epoch,improvement,improvement_pct,rejection_ratio",
        &csv,
    ) {
        println!("\nwrote {}", p.display());
    }
}
