//! Experiment scaling: quick smoke runs, the standard scale, and the full
//! paper scale.

/// How big an experiment run is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Training epochs (model updates).
    pub epochs: usize,
    /// Trajectories per epoch.
    pub batch: usize,
    /// Jobs per training trajectory.
    pub seq_len: usize,
    /// Held-out sequences per evaluation.
    pub eval_seqs: usize,
    /// Jobs per evaluation sequence.
    pub eval_len: usize,
    /// Jobs generated per synthetic trace.
    pub trace_jobs: usize,
}

impl Scale {
    /// Smoke-test scale (seconds per experiment).
    pub fn quick() -> Self {
        Scale {
            epochs: 6,
            batch: 16,
            seq_len: 48,
            eval_seqs: 10,
            eval_len: 96,
            trace_jobs: 2_000,
        }
    }

    /// Default scale: paper-shaped but sized to run a full experiment suite
    /// in minutes on a laptop.
    pub fn standard() -> Self {
        Scale {
            epochs: 40,
            batch: 64,
            seq_len: 128,
            eval_seqs: 50,
            eval_len: 256,
            trace_jobs: 10_000,
        }
    }

    /// The paper's §4.1 settings verbatim.
    pub fn paper() -> Self {
        Scale {
            epochs: 80,
            batch: 100,
            seq_len: 128,
            eval_seqs: 50,
            eval_len: 256,
            trace_jobs: 20_000,
        }
    }
}

/// Parse standard experiment flags: `--quick`, `--paper`, `--epochs N`,
/// `--seed N`. Returns the scale and the base seed.
pub fn parse_args() -> (Scale, u64) {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::standard();
    if args.iter().any(|a| a == "--quick") {
        scale = Scale::quick();
    }
    if args.iter().any(|a| a == "--paper") {
        scale = Scale::paper();
    }
    let mut seed = 20220627; // HPDC'22 started June 27, 2022
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--epochs" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    scale.epochs = v;
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    seed = v;
                }
            }
            _ => {}
        }
    }
    (scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let s = Scale::standard();
        let p = Scale::paper();
        assert!(q.epochs < s.epochs && s.epochs <= p.epochs);
        assert!(q.trace_jobs < s.trace_jobs);
        assert_eq!(p.batch, 100, "paper batch size");
        assert_eq!(p.seq_len, 128, "paper trajectory length");
        assert_eq!(s.eval_seqs, 50, "paper evaluation count");
        assert_eq!(s.eval_len, 256, "paper evaluation sequence length");
    }
}
