//! Training/evaluation drivers shared by the experiment binaries.

use inspector::{
    evaluate, factory_for, slurm_factory, EvalReport, FeatureMode, InspectorConfig, PolicyFactory,
    RewardKind, SchedInspector, Trainer, TrainingHistory,
};
use obs::Telemetry;
use policies::PolicyKind;
use simhpc::{Metric, SimConfig};
use workload::JobTrace;

use crate::load_trace;
use crate::scale::Scale;

/// One (trace, policy, metric, ...) training combination.
#[derive(Debug, Clone)]
pub struct ComboSpec {
    /// Trace name (Table 2).
    pub trace: String,
    /// Base policy; `None` selects the Slurm multifactor policy (§4.5).
    pub policy: Option<PolicyKind>,
    /// Optimized metric.
    pub metric: Metric,
    /// Reward function.
    pub reward: RewardKind,
    /// Feature-building mechanism.
    pub features: FeatureMode,
    /// EASY backfilling on/off.
    pub backfill: bool,
}

impl ComboSpec {
    /// The paper's default combination for a (trace, policy) pair.
    pub fn new(trace: &str, policy: PolicyKind) -> Self {
        ComboSpec {
            trace: trace.into(),
            policy: Some(policy),
            metric: Metric::Bsld,
            reward: RewardKind::Percentage,
            features: FeatureMode::Manual,
            backfill: false,
        }
    }

    /// Human-readable name of the base policy.
    pub fn policy_name(&self) -> &str {
        match self.policy {
            Some(k) => k.name(),
            None => "Slurm",
        }
    }
}

/// Everything produced by training one combination.
pub struct TrainOutcome {
    /// Per-epoch training curve.
    pub history: TrainingHistory,
    /// The trained inspector.
    pub inspector: SchedInspector,
    /// Base-policy factory used for training (reuse it for evaluation).
    pub factory: PolicyFactory,
    /// Train split (first 20%).
    pub train: JobTrace,
    /// Test split (remaining 80%).
    pub test: JobTrace,
    /// Simulator configuration used.
    pub sim: SimConfig,
}

impl TrainOutcome {
    /// Evaluate the trained inspector on the held-out split at this scale.
    pub fn evaluate(&self, scale: &Scale, seed: u64) -> EvalReport {
        evaluate(
            &self.inspector,
            &self.test,
            &self.factory,
            self.sim,
            scale.eval_seqs,
            scale.eval_len,
            seed,
            0,
        )
    }
}

/// Train one combination at the given scale (the workhorse of Figs. 4–12).
pub fn train_combo(spec: &ComboSpec, scale: &Scale, seed: u64) -> TrainOutcome {
    train_combo_traced(spec, scale, seed, &Telemetry::disabled())
}

/// Like [`train_combo`], but streaming training telemetry through
/// `telemetry` — binaries pass the sidecar handle from
/// [`telemetry_for`](crate::telemetry_for).
pub fn train_combo_traced(
    spec: &ComboSpec,
    scale: &Scale,
    seed: u64,
    telemetry: &Telemetry,
) -> TrainOutcome {
    let trace = load_trace(&spec.trace, scale, seed);
    let (train, test) = trace.split(0.2);
    let factory: PolicyFactory = match spec.policy {
        Some(kind) => factory_for(kind),
        None => slurm_factory(&trace),
    };
    let sim = SimConfig {
        backfill: spec.backfill,
        ..SimConfig::default()
    };
    let config = InspectorConfig {
        metric: spec.metric,
        features: spec.features,
        reward: spec.reward,
        sim,
        batch_size: scale.batch,
        seq_len: scale.seq_len,
        epochs: scale.epochs,
        seed,
        workers: 0,
        baseline_cache: true,
    };
    let mut trainer = Trainer::builder(train.clone())
        .factory(factory.clone())
        .config(config)
        .telemetry(telemetry.clone())
        .build()
        .expect("experiment configs are valid");
    let history = trainer.train();
    telemetry.flush();
    TrainOutcome {
        history,
        inspector: trainer.inspector(),
        factory,
        train,
        test,
        sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_combo_trains_and_evaluates() {
        let mut scale = Scale::quick();
        scale.epochs = 2;
        scale.batch = 4;
        scale.trace_jobs = 1_200;
        scale.eval_seqs = 3;
        scale.eval_len = 48;
        let spec = ComboSpec::new("SDSC-SP2", PolicyKind::Sjf);
        let out = train_combo(&spec, &scale, 7);
        assert_eq!(out.history.records.len(), 2);
        let rep = out.evaluate(&scale, 1);
        assert_eq!(rep.cases.len(), 3);
        assert!(rep.mean_base(Metric::Bsld).is_finite());
    }

    #[test]
    fn combo_spec_names() {
        let s = ComboSpec::new("Lublin", PolicyKind::F1);
        assert_eq!(s.policy_name(), "F1");
        let slurm = ComboSpec { policy: None, ..s };
        assert_eq!(slurm.policy_name(), "Slurm");
    }
}
