//! Shared harness for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` built on these helpers: trace loading, scaled configurations
//! (`--quick` / `--paper`), training drivers, CSV output under `results/`,
//! and aligned table printing.

pub mod harness;
pub mod output;
pub mod scale;

pub use harness::{train_combo, train_combo_traced, ComboSpec, TrainOutcome};
pub use output::{print_table, write_csv};
pub use scale::{parse_args, Scale};

use workload::{JobTrace, SyntheticSource, TraceSource};

/// Sidecar telemetry for an experiment binary. Opt-in: when
/// `SCHEDINSPECTOR_TELEMETRY` is set (to anything), training events stream
/// to `results/<binary>.telemetry.jsonl` (one JSON object per line);
/// otherwise the handle is disabled and recording costs nothing.
pub fn telemetry_for(binary: &str) -> obs::Telemetry {
    if std::env::var_os("SCHEDINSPECTOR_TELEMETRY").is_none() {
        return obs::Telemetry::disabled();
    }
    let dir = output::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "warning: cannot create {}: {e}; telemetry off",
            dir.display()
        );
        return obs::Telemetry::disabled();
    }
    let path = dir.join(format!("{binary}.telemetry.jsonl"));
    match obs::Telemetry::jsonl(&path) {
        Ok(t) => {
            println!("telemetry -> {}", path.display());
            t
        }
        Err(e) => {
            eprintln!(
                "warning: cannot write {}: {e}; telemetry off",
                path.display()
            );
            obs::Telemetry::disabled()
        }
    }
}

/// The four paper traces in Table 2 order.
pub const TRACES: [&str; 4] = ["SDSC-SP2", "CTC-SP2", "Lublin", "HPC2N"];

/// Generate a paper trace at the scale's job count, deterministically from
/// `seed`.
pub fn load_trace(name: &str, scale: &Scale, seed: u64) -> JobTrace {
    trace_source(name, scale, seed)
        .load()
        .unwrap_or_else(|e| panic!("cannot load trace {name:?}: {e}"))
}

/// The [`TraceSource`] behind [`load_trace`]: the named calibrated profile
/// at the scale's job count, salted per trace name so cross-trace
/// experiments never share an RNG stream.
pub fn trace_source(name: &str, scale: &Scale, seed: u64) -> SyntheticSource {
    SyntheticSource::new(name, scale.trace_jobs, seed ^ trace_salt(name))
}

fn trace_salt(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_load_at_quick_scale() {
        let scale = Scale::quick();
        for name in TRACES {
            let t = load_trace(name, &scale, 1);
            assert_eq!(t.len(), scale.trace_jobs, "{name}");
        }
    }

    #[test]
    fn trace_salts_differ() {
        assert_ne!(trace_salt("SDSC-SP2"), trace_salt("CTC-SP2"));
    }
}
