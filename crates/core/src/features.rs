//! Feature building (§3.3).
//!
//! The raw scheduling state is summarized into a small, normalized feature
//! vector. Three mechanisms are implemented, matching the paper's Fig. 5
//! ablation:
//!
//! * [`FeatureMode::Manual`] — the paper's hand-built features: scheduled
//!   job attributes (wait, estimate, resources), rejected times, **queue
//!   delays** (the metric-aware aggregate cost of delaying the queue),
//!   cluster availability, runnable, and backfilling contributions;
//! * [`FeatureMode::Compacted`] — only the current job and cluster state
//!   (drops the aggregated queue-delay/backfilling features);
//! * [`FeatureMode::Native`] — the raw environmental state: the scheduled
//!   job plus the first [`NATIVE_QUEUE_SLOTS`] waiting jobs verbatim, the
//!   strategy "expect the network to figure features out itself" used by
//!   RLScheduler-style work.

use serde::{Deserialize, Serialize};
use simhpc::{Metric, Observation, BSLD_THRESHOLD};

/// Queue slots included in the native (raw-state) representation.
pub const NATIVE_QUEUE_SLOTS: usize = 16;

/// Feature-building mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureMode {
    /// The paper's manually built, metric-aware features.
    Manual,
    /// Current job + cluster state only.
    Compacted,
    /// Raw environmental state.
    Native,
}

/// Normalization constants, derived from the trace being scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    /// Cap/normalizer for job estimates (the trace's max estimate).
    pub max_estimate: f64,
    /// Machine processors.
    pub total_procs: u32,
    /// Cap for waiting times (1 day by default).
    pub max_wait: f64,
    /// `MAX_INTERVAL` — the delay unit for the queue-delays feature.
    pub max_interval: f64,
    /// `MAX_REJECTION_TIMES`.
    pub max_rejections: u32,
}

impl Normalizer {
    /// Defaults for a machine of `total_procs`, max estimate `max_estimate`.
    pub fn new(total_procs: u32, max_estimate: f64) -> Self {
        Normalizer {
            max_estimate: max_estimate.max(1.0),
            total_procs: total_procs.max(1),
            max_wait: 86_400.0,
            max_interval: 600.0,
            max_rejections: 72,
        }
    }
}

/// Builds normalized feature vectors from simulator observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureBuilder {
    /// Which mechanism to use.
    pub mode: FeatureMode,
    /// Metric the queue-delays feature is computed against.
    pub metric: Metric,
    /// Normalization constants.
    pub norm: Normalizer,
}

impl FeatureBuilder {
    /// A manual-features builder (the paper default).
    pub fn manual(metric: Metric, norm: Normalizer) -> Self {
        FeatureBuilder {
            mode: FeatureMode::Manual,
            metric,
            norm,
        }
    }

    /// Feature-vector length for this mode.
    pub fn dim(&self) -> usize {
        match self.mode {
            FeatureMode::Manual => 8,
            FeatureMode::Compacted => 5,
            FeatureMode::Native => 6 + 3 * NATIVE_QUEUE_SLOTS,
        }
    }

    /// Build the feature vector for `obs` into `out` (cleared first).
    pub fn build(&self, obs: &Observation, out: &mut Vec<f32>) {
        out.clear();
        let n = &self.norm;
        let wait = (obs.wait / n.max_wait).clamp(0.0, 1.0) as f32;
        let est = (obs.job.estimate / n.max_estimate).clamp(0.0, 1.0) as f32;
        let res = (obs.job.procs as f64 / n.total_procs as f64).clamp(0.0, 1.0) as f32;
        let rejected = obs.rejections as f32 / obs.max_rejections.max(1) as f32;
        let avail = obs.availability() as f32;
        let runnable = if obs.runnable { 1.0f32 } else { 0.0 };
        match self.mode {
            FeatureMode::Manual => {
                out.push(wait);
                out.push(est);
                out.push(res);
                out.push(rejected);
                out.push(self.queue_delays(obs));
                out.push(avail);
                out.push(runnable);
                out.push(backfill_feature(obs));
            }
            FeatureMode::Compacted => {
                out.push(wait);
                out.push(est);
                out.push(res);
                out.push(avail);
                out.push(runnable);
            }
            FeatureMode::Native => {
                out.push(wait);
                out.push(est);
                out.push(res);
                out.push(rejected);
                out.push(avail);
                out.push(runnable);
                for slot in 0..NATIVE_QUEUE_SLOTS {
                    match obs.queue.get(slot) {
                        Some(q) => {
                            out.push((q.wait / n.max_wait).clamp(0.0, 1.0) as f32);
                            out.push((q.estimate / n.max_estimate).clamp(0.0, 1.0) as f32);
                            out.push(
                                (q.procs as f64 / n.total_procs as f64).clamp(0.0, 1.0) as f32,
                            );
                        }
                        None => out.extend_from_slice(&[0.0, 0.0, 0.0]),
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), self.dim());
    }

    /// The queue-delays feature: the aggregate cost, in units of the target
    /// metric, of idling the queue for one `MAX_INTERVAL` (§3.3). A
    /// `x / (x + scale)` squash keeps it in `[0, 1)` while staying
    /// monotone in the true cost.
    pub fn queue_delays(&self, obs: &Observation) -> f32 {
        let dt = self.norm.max_interval;
        let cost: f64 = match self.metric {
            // Δt idle adds ≈ Δt / max(est_j, 10) to each waiting job's bsld.
            Metric::Bsld | Metric::MaxBsld => obs
                .queue
                .iter()
                .map(|q| dt / q.estimate.max(BSLD_THRESHOLD))
                .sum(),
            // Δt idle adds Δt seconds of waiting per queued job; expressed
            // in job-count units so the squash scale is metric-free.
            Metric::Wait => obs.queue.len() as f64,
        };
        let scale = 10.0;
        (cost / (cost + scale)) as f32
    }
}

/// Backfilling contributions: 0 when backfilling is off, else the number of
/// backfillable waiting jobs squashed into `[0, 1)`.
fn backfill_feature(obs: &Observation) -> f32 {
    if !obs.backfill_enabled {
        return 0.0;
    }
    let c = obs.backfillable as f32;
    c / (c + 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simhpc::QueueEntry;
    use workload::Job;

    fn obs() -> Observation {
        Observation {
            now: 1000.0,
            job: Job::new(1, 500.0, 3600.0, 7200.0, 16),
            wait: 500.0,
            rejections: 9,
            max_rejections: 72,
            free_procs: 32,
            total_procs: 128,
            runnable: true,
            backfill_enabled: false,
            backfillable: 0,
            queue: vec![
                QueueEntry {
                    id: 2,
                    wait: 100.0,
                    estimate: 600.0,
                    procs: 4,
                },
                QueueEntry {
                    id: 3,
                    wait: 50.0,
                    estimate: 60.0,
                    procs: 2,
                },
            ],
        }
    }

    fn builder(mode: FeatureMode, metric: Metric) -> FeatureBuilder {
        FeatureBuilder {
            mode,
            metric,
            norm: Normalizer::new(128, 86_400.0),
        }
    }

    #[test]
    fn dims_are_consistent() {
        for mode in [
            FeatureMode::Manual,
            FeatureMode::Compacted,
            FeatureMode::Native,
        ] {
            let b = builder(mode, Metric::Bsld);
            let mut v = Vec::new();
            b.build(&obs(), &mut v);
            assert_eq!(v.len(), b.dim(), "{mode:?}");
            assert!(v.iter().all(|x| (0.0..=1.0).contains(x)), "{mode:?}: {v:?}");
        }
    }

    #[test]
    fn manual_features_encode_job_attributes() {
        let b = builder(FeatureMode::Manual, Metric::Bsld);
        let mut v = Vec::new();
        b.build(&obs(), &mut v);
        assert!((v[0] - (500.0 / 86_400.0) as f32).abs() < 1e-6); // wait
        assert!((v[1] - (7200.0 / 86_400.0) as f32).abs() < 1e-6); // est
        assert!((v[2] - 0.125).abs() < 1e-6); // res = 16/128
        assert!((v[3] - 0.125).abs() < 1e-6); // rejected = 9/72
        assert!((v[5] - 0.25).abs() < 1e-6); // avail = 32/128
        assert_eq!(v[6], 1.0); // runnable
        assert_eq!(v[7], 0.0); // backfilling disabled
    }

    #[test]
    fn queue_delays_depends_on_metric() {
        let b_bsld = builder(FeatureMode::Manual, Metric::Bsld);
        let b_wait = builder(FeatureMode::Manual, Metric::Wait);
        let o = obs();
        // bsld cost: 600/600 + 600/60 = 11; squash 11/21.
        assert!((b_bsld.queue_delays(&o) - 11.0 / 21.0).abs() < 1e-6);
        // wait cost: 2 jobs; squash 2/12.
        assert!((b_wait.queue_delays(&o) - 2.0 / 12.0).abs() < 1e-6);
    }

    #[test]
    fn queue_delays_monotone_in_queue_size() {
        let b = builder(FeatureMode::Manual, Metric::Bsld);
        let mut o = obs();
        let short = b.queue_delays(&o);
        o.queue.push(QueueEntry {
            id: 4,
            wait: 0.0,
            estimate: 30.0,
            procs: 1,
        });
        assert!(b.queue_delays(&o) > short);
    }

    #[test]
    fn backfill_feature_squashes_count() {
        let mut o = obs();
        o.backfill_enabled = true;
        o.backfillable = 4;
        let b = builder(FeatureMode::Manual, Metric::Bsld);
        let mut v = Vec::new();
        b.build(&o, &mut v);
        assert!((v[7] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn native_mode_pads_missing_queue_slots() {
        let b = builder(FeatureMode::Native, Metric::Bsld);
        let mut v = Vec::new();
        b.build(&obs(), &mut v);
        // Two real queue entries, the rest zero-padded.
        assert_eq!(v.len(), 6 + 3 * NATIVE_QUEUE_SLOTS);
        assert!(v[6] > 0.0);
        assert_eq!(v[6 + 3 * 2], 0.0);
    }

    #[test]
    fn manual_with_7_features_matches_paper_param_count() {
        // Without backfilling the paper's effective input is 7 features;
        // our fixed 8th (backfill) input is 0 — dims stay stable across
        // backfill on/off, which is what deployment needs.
        let b = builder(FeatureMode::Manual, Metric::Bsld);
        assert_eq!(b.dim(), 8);
    }
}
