//! **SchedInspector** — an RL-based batch job scheduling inspector.
//!
//! Reproduction of *"SchedInspector: A Batch Job Scheduling Inspector Using
//! Reinforcement Learning"* (Zhang, Dai, Xie — HPDC 2022). The inspector
//! sits on top of an unmodified base scheduling policy (SJF, F1, Slurm
//! multifactor, ...) and scrutinizes each scheduling decision against the
//! runtime context: the decision is either accepted or *rejected*, putting
//! the job back in the queue until the next scheduling point. The policy is
//! a 938-parameter MLP trained with PPO against a variance-normalized
//! **percentage reward**.
//!
//! # Quick start
//!
//! ```
//! use inspector::{factory_for, InspectorConfig, Trainer, evaluate};
//! use policies::PolicyKind;
//! use workload::{profiles, synthetic};
//!
//! // Synthetic SDSC-SP2 trace calibrated to the paper's Table 2.
//! let trace = synthetic::generate(&profiles::SDSC_SP2, 2_000, 42);
//! let (train, test) = trace.split(0.2);
//!
//! // Train a (tiny, smoke-sized) inspector over SJF.
//! let mut config = InspectorConfig::quick();
//! config.epochs = 2;
//! config.batch_size = 4;
//! let mut trainer = Trainer::builder(train)
//!     .policy(PolicyKind::Sjf)
//!     .config(config)
//!     .build()
//!     .expect("valid config");
//! let history = trainer.train();
//! assert_eq!(history.records.len(), 2);
//!
//! // Evaluate on held-out sequences.
//! let factory = factory_for(PolicyKind::Sjf);
//! let report = evaluate(
//!     &trainer.inspector(), &test, &factory, config.sim, 3, 64, 7, 0,
//! );
//! assert_eq!(report.cases.len(), 3);
//! ```

mod agent;
pub mod analysis;
mod baseline;
pub mod checkpoint;
mod config;
mod env;
mod eval;
pub mod features;
pub mod model_io;
mod reward;
mod trainer;

pub use agent::{Decision, DeployedHook, SchedInspector};
pub use baseline::BaselineCache;
pub use checkpoint::Checkpoint;
pub use config::{ConfigError, InspectorConfig};
pub use env::{factory_for, run_episode, slurm_factory, Episode, EpisodeSpec, PolicyFactory};
pub use eval::{evaluate, evaluate_base, EvalCase, EvalReport};
pub use features::{FeatureBuilder, FeatureMode, Normalizer};
pub use model_io::ModelIoError;
pub use reward::RewardKind;
pub use trainer::{
    EpisodeSummary, EpochPlan, EpochRecord, EpochTiming, RolloutReport, TrainError, Trainer,
    TrainerBuilder, TrainingHistory,
};

#[cfg(test)]
mod tests {
    use super::*;
    use policies::PolicyKind;
    use simhpc::Metric;
    use workload::Job;
    use workload::JobTrace;

    /// End-to-end smoke: training on a congested trace must improve (or at
    /// least not catastrophically regress) SJF's bsld within a few epochs.
    #[test]
    fn training_improves_over_sjf_on_congested_trace() {
        // Heavy contention: a few wide/long jobs mixed with streams of
        // short narrow jobs on a small machine — exactly the situation the
        // paper's motivating example exploits.
        let mut jobs = Vec::new();
        for i in 0..1200u64 {
            let (rt, procs) = match i % 6 {
                0 => (7200.0, 5),
                1 => (300.0, 1),
                2 => (600.0, 2),
                3 => (5400.0, 4),
                4 => (120.0, 1),
                _ => (900.0, 2),
            };
            jobs.push(Job::new(i + 1, i as f64 * 240.0, rt, rt * 2.0, procs));
        }
        let trace = JobTrace::new("congested", 8, jobs).unwrap();
        let config = InspectorConfig {
            batch_size: 24,
            seq_len: 48,
            epochs: 12,
            seed: 1,
            workers: 0,
            ..Default::default()
        };
        let mut trainer = Trainer::builder(trace)
            .policy(PolicyKind::Sjf)
            .config(config)
            .build()
            .unwrap();
        let history = trainer.train();
        let early = history.records[0].improvement_pct;
        let late = history.converged_improvement(3);
        let late_pct: f64 = history.records[history.records.len() - 3..]
            .iter()
            .map(|r| r.improvement_pct)
            .sum::<f64>()
            / 3.0;
        // The learning signal must move in the right direction.
        assert!(
            late_pct > early - 0.05,
            "training regressed: first-epoch pct {early}, late pct {late_pct} (abs {late})"
        );
        assert!(history.records.iter().all(|r| r.base_metric.is_finite()));
    }

    #[test]
    fn model_io_roundtrip_through_public_api() {
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Wait,
            norm: Normalizer::new(64, 7200.0),
        };
        let insp = SchedInspector::new(rlcore::BinaryPolicy::new(fb.dim(), 5), fb);
        let text = model_io::to_text(&insp);
        let back = model_io::from_text(&text).unwrap();
        assert_eq!(back.features.metric, Metric::Wait);
    }
}
