//! Persistence of trained inspectors.
//!
//! A saved model records the policy weights (tinynn text format) plus the
//! feature configuration it was trained with, so a loaded inspector is
//! bit-identical in behavior. The format is line-oriented text, stable and
//! diff-friendly.

use std::path::Path;

use rlcore::BinaryPolicy;
use simhpc::Metric;
use tinynn::Mlp;

use crate::agent::SchedInspector;
use crate::features::{FeatureBuilder, FeatureMode, Normalizer};

const HEADER: &str = "schedinspector-model v1";

fn mode_name(m: FeatureMode) -> &'static str {
    match m {
        FeatureMode::Manual => "manual",
        FeatureMode::Compacted => "compacted",
        FeatureMode::Native => "native",
    }
}

fn mode_parse(s: &str) -> Result<FeatureMode, String> {
    match s {
        "manual" => Ok(FeatureMode::Manual),
        "compacted" => Ok(FeatureMode::Compacted),
        "native" => Ok(FeatureMode::Native),
        other => Err(format!("unknown feature mode {other:?}")),
    }
}

/// Serialize an inspector to the model text format.
pub fn to_text(inspector: &SchedInspector) -> String {
    let f = &inspector.features;
    let n = &f.norm;
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("metric {}\n", f.metric.name()));
    out.push_str(&format!("features {}\n", mode_name(f.mode)));
    out.push_str(&format!(
        "norm {} {} {} {} {}\n",
        n.max_estimate, n.total_procs, n.max_wait, n.max_interval, n.max_rejections
    ));
    out.push_str("policy\n");
    out.push_str(&inspector.policy_mlp_text());
    out
}

/// Parse an inspector from the model text format.
pub fn from_text(text: &str) -> Result<SchedInspector, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty model file")?;
    if header.trim() != HEADER {
        return Err(format!("bad header {header:?}"));
    }
    let metric: Metric = lines
        .next()
        .and_then(|l| l.strip_prefix("metric "))
        .ok_or("missing metric line")?
        .trim()
        .parse()?;
    let mode = mode_parse(
        lines
            .next()
            .and_then(|l| l.strip_prefix("features "))
            .ok_or("missing features line")?
            .trim(),
    )?;
    let norm_line = lines
        .next()
        .and_then(|l| l.strip_prefix("norm "))
        .ok_or("missing norm line")?;
    let vals: Vec<f64> = norm_line
        .split_whitespace()
        .map(|t| t.parse::<f64>().map_err(|e| format!("bad norm value: {e}")))
        .collect::<Result<_, _>>()?;
    if vals.len() != 5 {
        return Err(format!("norm line: expected 5 values, got {}", vals.len()));
    }
    let norm = Normalizer {
        max_estimate: vals[0],
        total_procs: vals[1] as u32,
        max_wait: vals[2],
        max_interval: vals[3],
        max_rejections: vals[4] as u32,
    };
    let marker = lines.next().ok_or("missing policy marker")?;
    if marker.trim() != "policy" {
        return Err(format!("expected 'policy' marker, got {marker:?}"));
    }
    let rest: String = lines.collect::<Vec<_>>().join("\n");
    let mlp = Mlp::from_text(&rest)?;
    let features = FeatureBuilder { mode, metric, norm };
    if mlp.input_dim() != features.dim() {
        return Err(format!(
            "policy input dim {} does not match feature dim {}",
            mlp.input_dim(),
            features.dim()
        ));
    }
    Ok(SchedInspector::new(BinaryPolicy::from_mlp(mlp)?, features))
}

/// Save an inspector to a file.
pub fn save(inspector: &SchedInspector, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(inspector))
}

/// Load an inspector from a file.
pub fn load(path: &Path) -> Result<SchedInspector, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    from_text(&text)
}

impl SchedInspector {
    fn policy_mlp_text(&self) -> String {
        self.policy.mlp().to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simhpc::Observation;
    use workload::Job;

    fn inspector() -> SchedInspector {
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(128, 43_200.0),
        };
        SchedInspector::new(BinaryPolicy::new(fb.dim(), 33), fb)
    }

    fn obs() -> Observation {
        Observation {
            now: 100.0,
            job: Job::new(1, 0.0, 300.0, 600.0, 16),
            wait: 100.0,
            rejections: 2,
            max_rejections: 72,
            free_procs: 50,
            total_procs: 128,
            runnable: true,
            backfill_enabled: false,
            backfillable: 0,
            queue: vec![],
        }
    }

    #[test]
    fn roundtrip_preserves_behavior() {
        let insp = inspector();
        let text = to_text(&insp);
        let back = from_text(&text).unwrap();
        assert_eq!(insp.prob_reject(&obs()), back.prob_reject(&obs()));
        assert_eq!(insp.features, back.features);
    }

    #[test]
    fn file_roundtrip() {
        let insp = inspector();
        let dir = std::env::temp_dir().join("schedinspector-model-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        save(&insp, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(insp.prob_reject(&obs()), back.prob_reject(&obs()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_models() {
        assert!(from_text("").is_err());
        assert!(from_text("wrong\n").is_err());
        let text = to_text(&inspector()).replace("metric bsld", "metric nope");
        assert!(from_text(&text).is_err());
    }

    #[test]
    fn rejects_dim_mismatch() {
        let text = to_text(&inspector()).replace("features manual", "features compacted");
        assert!(
            from_text(&text).is_err(),
            "compacted dim is 5, policy expects 8"
        );
    }
}
