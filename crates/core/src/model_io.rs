//! Persistence of trained inspectors.
//!
//! A saved model records the policy weights (tinynn text format) plus the
//! feature configuration it was trained with, so a loaded inspector is
//! bit-identical in behavior. The format is line-oriented text, stable and
//! diff-friendly.
//!
//! Errors are typed ([`ModelIoError`]) and parse failures carry the
//! 1-based line number they were detected at, so a corrupt checkpoint is
//! reported as `model.txt: line 4: ...` rather than an anonymous string.

use std::path::{Path, PathBuf};

use rlcore::BinaryPolicy;
use simhpc::Metric;
use tinynn::Mlp;

use crate::agent::SchedInspector;
use crate::features::{FeatureBuilder, FeatureMode, Normalizer};

const HEADER: &str = "schedinspector-model v1";

/// Why reading or writing a model checkpoint failed.
#[derive(Debug)]
pub enum ModelIoError {
    /// The file could not be read or written.
    Io {
        /// Path of the checkpoint.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The checkpoint text did not parse.
    Parse {
        /// 1-based line number the failure was detected at.
        line: usize,
        /// What was wrong with that line.
        msg: String,
    },
}

impl ModelIoError {
    /// The 1-based line number of a parse failure, if this is one.
    pub fn line(&self) -> Option<usize> {
        match self {
            ModelIoError::Parse { line, .. } => Some(*line),
            ModelIoError::Io { .. } => None,
        }
    }
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            ModelIoError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ModelIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelIoError::Io { source, .. } => Some(source),
            ModelIoError::Parse { .. } => None,
        }
    }
}

/// A parse error at 1-based line `line` (internal shorthand).
fn parse_err(line: usize, msg: impl Into<String>) -> ModelIoError {
    ModelIoError::Parse {
        line,
        msg: msg.into(),
    }
}

fn mode_name(m: FeatureMode) -> &'static str {
    match m {
        FeatureMode::Manual => "manual",
        FeatureMode::Compacted => "compacted",
        FeatureMode::Native => "native",
    }
}

fn mode_parse(s: &str) -> Result<FeatureMode, String> {
    match s {
        "manual" => Ok(FeatureMode::Manual),
        "compacted" => Ok(FeatureMode::Compacted),
        "native" => Ok(FeatureMode::Native),
        other => Err(format!("unknown feature mode {other:?}")),
    }
}

/// Serialize an inspector to the model text format.
pub fn to_text(inspector: &SchedInspector) -> String {
    let f = &inspector.features;
    let n = &f.norm;
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("metric {}\n", f.metric.name()));
    out.push_str(&format!("features {}\n", mode_name(f.mode)));
    out.push_str(&format!(
        "norm {} {} {} {} {}\n",
        n.max_estimate, n.total_procs, n.max_wait, n.max_interval, n.max_rejections
    ));
    out.push_str("policy\n");
    out.push_str(&inspector.policy_mlp_text());
    out
}

/// Parse an inspector from the model text format.
pub fn from_text(text: &str) -> Result<SchedInspector, ModelIoError> {
    let mut lines = text.lines();
    // Fixed five-line preamble; line numbers are 1-based for messages.
    let header = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty model file"))?;
    if header.trim() != HEADER {
        return Err(parse_err(1, format!("bad header {header:?}")));
    }
    let metric: Metric = lines
        .next()
        .and_then(|l| l.strip_prefix("metric "))
        .ok_or_else(|| parse_err(2, "missing metric line"))?
        .trim()
        .parse()
        .map_err(|e: String| parse_err(2, e))?;
    let mode = mode_parse(
        lines
            .next()
            .and_then(|l| l.strip_prefix("features "))
            .ok_or_else(|| parse_err(3, "missing features line"))?
            .trim(),
    )
    .map_err(|e| parse_err(3, e))?;
    let norm_line = lines
        .next()
        .and_then(|l| l.strip_prefix("norm "))
        .ok_or_else(|| parse_err(4, "missing norm line"))?;
    let vals: Vec<f64> = norm_line
        .split_whitespace()
        .map(|t| {
            t.parse::<f64>()
                .map_err(|e| parse_err(4, format!("bad norm value: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if vals.len() != 5 {
        return Err(parse_err(
            4,
            format!("norm line: expected 5 values, got {}", vals.len()),
        ));
    }
    let norm = Normalizer {
        max_estimate: vals[0],
        total_procs: vals[1] as u32,
        max_wait: vals[2],
        max_interval: vals[3],
        max_rejections: vals[4] as u32,
    };
    let marker = lines
        .next()
        .ok_or_else(|| parse_err(5, "missing policy marker"))?;
    if marker.trim() != "policy" {
        return Err(parse_err(
            5,
            format!("expected 'policy' marker, got {marker:?}"),
        ));
    }
    // The policy payload is the whole remainder; tinynn's parser does not
    // track lines, so its errors are attributed to the section start.
    const POLICY_START: usize = 6;
    let rest: String = lines.collect::<Vec<_>>().join("\n");
    let mlp = Mlp::from_text(&rest)
        .map_err(|e| parse_err(POLICY_START, format!("policy section: {e}")))?;
    let features = FeatureBuilder { mode, metric, norm };
    if mlp.input_dim() != features.dim() {
        return Err(parse_err(
            POLICY_START,
            format!(
                "policy input dim {} does not match feature dim {}",
                mlp.input_dim(),
                features.dim()
            ),
        ));
    }
    let policy = BinaryPolicy::from_mlp(mlp).map_err(|e| parse_err(POLICY_START, e))?;
    Ok(SchedInspector::new(policy, features))
}

/// Save an inspector to a file.
pub fn save(inspector: &SchedInspector, path: &Path) -> Result<(), ModelIoError> {
    std::fs::write(path, to_text(inspector)).map_err(|source| ModelIoError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Load an inspector from a file.
pub fn load(path: &Path) -> Result<SchedInspector, ModelIoError> {
    let text = std::fs::read_to_string(path).map_err(|source| ModelIoError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    from_text(&text)
}

impl SchedInspector {
    fn policy_mlp_text(&self) -> String {
        self.policy.mlp().to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simhpc::Observation;
    use workload::Job;

    fn inspector() -> SchedInspector {
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(128, 43_200.0),
        };
        SchedInspector::new(BinaryPolicy::new(fb.dim(), 33), fb)
    }

    fn obs() -> Observation {
        Observation {
            now: 100.0,
            job: Job::new(1, 0.0, 300.0, 600.0, 16),
            wait: 100.0,
            rejections: 2,
            max_rejections: 72,
            free_procs: 50,
            total_procs: 128,
            runnable: true,
            backfill_enabled: false,
            backfillable: 0,
            queue: vec![],
        }
    }

    #[test]
    fn roundtrip_preserves_behavior() {
        let insp = inspector();
        let text = to_text(&insp);
        let back = from_text(&text).unwrap();
        assert_eq!(insp.prob_reject(&obs()), back.prob_reject(&obs()));
        assert_eq!(insp.features, back.features);
    }

    #[test]
    fn file_roundtrip() {
        let insp = inspector();
        let dir = std::env::temp_dir().join("schedinspector-model-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        save(&insp, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(insp.prob_reject(&obs()), back.prob_reject(&obs()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_models() {
        assert!(from_text("").is_err());
        assert!(from_text("wrong\n").is_err());
        let text = to_text(&inspector()).replace("metric bsld", "metric nope");
        assert!(from_text(&text).is_err());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert_eq!(from_text("").unwrap_err().line(), Some(1));
        assert_eq!(from_text("wrong\n").unwrap_err().line(), Some(1));
        let good = to_text(&inspector());
        let cases = [
            ("metric bsld", "metric nope", 2),
            ("features manual", "feature manual", 3),
            ("norm ", "norms ", 4),
            ("policy\n", "policies\n", 5),
            ("tinynn-mlp v1", "tinynn-mlp v9", 6),
        ];
        for (from, to, line) in cases {
            let bad = good.replace(from, to);
            let err = from_text(&bad).unwrap_err();
            assert_eq!(err.line(), Some(line), "corrupting {from:?}: {err}");
            assert!(err.to_string().starts_with(&format!("line {line}:")));
        }
    }

    #[test]
    fn io_errors_carry_the_path() {
        let err = load(Path::new("/nonexistent/schedinspector/model.txt")).unwrap_err();
        assert!(err.line().is_none());
        assert!(err.to_string().contains("/nonexistent/schedinspector"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn rejects_dim_mismatch() {
        let text = to_text(&inspector()).replace("features manual", "features compacted");
        assert!(
            from_text(&text).is_err(),
            "compacted dim is 5, policy expects 8"
        );
    }
}
