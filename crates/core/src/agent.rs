//! The deployable SchedInspector artifact: a trained policy plus its
//! feature builder.

use rlcore::{BinaryPolicy, PolicyScratch, REJECT};
use simhpc::{InspectorHook, Observation};

use crate::features::FeatureBuilder;

/// One deployment-time accept/reject decision, as served to clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// `true` when the inspector rejects the scheduling decision.
    pub reject: bool,
    /// The policy's reject probability for this feature vector.
    pub p_reject: f32,
}

impl Decision {
    /// Build a decision from raw `[accept, reject]` logits — the same
    /// computation as [`SchedInspector::decide`] after its forward pass
    /// (via [`rlcore::greedy_from_logits`]), so a batched inference path
    /// that produced identical logits yields a bit-identical decision.
    pub fn from_logits(l0: f32, l1: f32) -> Decision {
        let (action, logp) = rlcore::greedy_from_logits(l0, l1);
        let reject = action == REJECT;
        let p_action = logp.exp();
        Decision {
            reject,
            p_reject: if reject { p_action } else { 1.0 - p_action },
        }
    }
}

/// A trained scheduling inspector.
///
/// At deployment time the inspector is deterministic: a decision is
/// rejected iff the policy's reject probability exceeds ½. Use
/// [`SchedInspector::hook`] to plug it into a [`simhpc::Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedInspector {
    /// The trained accept/reject policy network.
    pub policy: BinaryPolicy,
    /// The feature builder the policy was trained with.
    pub features: FeatureBuilder,
}

impl SchedInspector {
    /// Create an inspector from a policy and its feature builder. The
    /// dimensions must agree.
    pub fn new(policy: BinaryPolicy, features: FeatureBuilder) -> Self {
        assert_eq!(
            policy.input_dim(),
            features.dim(),
            "policy input dim must match the feature builder"
        );
        SchedInspector { policy, features }
    }

    /// Probability the inspector would reject this decision.
    pub fn prob_reject(&self, obs: &Observation) -> f32 {
        let mut buf = Vec::with_capacity(self.features.dim());
        self.features.build(obs, &mut buf);
        self.policy.prob_reject(&buf)
    }

    /// Greedy inspection decision (`true` = reject).
    pub fn inspect(&self, obs: &Observation) -> bool {
        let mut buf = Vec::with_capacity(self.features.dim());
        self.features.build(obs, &mut buf);
        self.policy.greedy(&buf) == REJECT
    }

    /// Expected feature-vector length.
    pub fn input_dim(&self) -> usize {
        self.features.dim()
    }

    /// Decide on an already-built feature vector, allocation-free: one
    /// scratch forward pass yields both the greedy action and its reject
    /// probability. This is the serving path (`crates/serve`) — the
    /// decision is bit-identical to [`SchedInspector::inspect`] on the
    /// observation the features were built from.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `features.len()` differs from
    /// [`SchedInspector::input_dim`]; callers validate lengths upfront.
    pub fn decide(&self, features: &[f32], scratch: &mut PolicyScratch) -> Decision {
        debug_assert_eq!(features.len(), self.input_dim());
        let (action, logp) = self.policy.greedy_scratch(features, scratch);
        let reject = action == REJECT;
        let p_action = logp.exp();
        Decision {
            reject,
            p_reject: if reject { p_action } else { 1.0 - p_action },
        }
    }

    /// An [`InspectorHook`] adapter for the simulator (reuses its feature
    /// buffer across calls).
    pub fn hook(&self) -> DeployedHook<'_> {
        DeployedHook {
            agent: self,
            buf: Vec::with_capacity(self.features.dim()),
        }
    }
}

/// Simulator hook wrapping a trained [`SchedInspector`].
#[derive(Debug)]
pub struct DeployedHook<'a> {
    agent: &'a SchedInspector,
    buf: Vec<f32>,
}

impl InspectorHook for DeployedHook<'_> {
    fn inspect(&mut self, obs: &Observation) -> bool {
        self.agent.features.build(obs, &mut self.buf);
        self.agent.policy.greedy(&self.buf) == REJECT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureMode, Normalizer};
    use simhpc::Metric;
    use workload::Job;

    fn inspector() -> SchedInspector {
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(64, 3600.0),
        };
        SchedInspector::new(BinaryPolicy::new(fb.dim(), 0), fb)
    }

    fn obs() -> Observation {
        Observation {
            now: 0.0,
            job: Job::new(1, 0.0, 60.0, 60.0, 4),
            wait: 0.0,
            rejections: 0,
            max_rejections: 72,
            free_procs: 64,
            total_procs: 64,
            runnable: true,
            backfill_enabled: false,
            backfillable: 0,
            queue: vec![],
        }
    }

    #[test]
    fn greedy_matches_probability_threshold() {
        let insp = inspector();
        let o = obs();
        assert_eq!(insp.inspect(&o), insp.prob_reject(&o) > 0.5);
    }

    #[test]
    fn hook_agrees_with_inspect() {
        let insp = inspector();
        let o = obs();
        let mut hook = insp.hook();
        assert_eq!(hook.inspect(&o), insp.inspect(&o));
        // Repeated calls reuse the buffer and stay consistent.
        assert_eq!(hook.inspect(&o), insp.inspect(&o));
    }

    #[test]
    fn decide_matches_inspect_and_prob_reject() {
        let insp = inspector();
        let o = obs();
        let mut features = Vec::new();
        insp.features.build(&o, &mut features);
        let mut scratch = PolicyScratch::default();
        let d = insp.decide(&features, &mut scratch);
        assert_eq!(d.reject, insp.inspect(&o));
        assert!((d.p_reject - insp.prob_reject(&o)).abs() < 1e-5);
        // Repeated scratch reuse stays deterministic.
        assert_eq!(insp.decide(&features, &mut scratch), d);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn dimension_mismatch_panics() {
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(64, 3600.0),
        };
        let _ = SchedInspector::new(BinaryPolicy::new(3, 0), fb);
    }
}
