//! Reward functions (§3.4).
//!
//! All three reward designs the paper compares are implemented. Rewards are
//! computed once per trajectory from the metric value of the inspected run
//! vs. the metric value of the *same* job sequence scheduled by the base
//! policy alone; all schedulers minimize their metric, so positive reward =
//! the inspector helped.

use serde::{Deserialize, Serialize};

/// Which reward function to train with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RewardKind {
    /// `m_orig − m_inspect` — direct difference ("Native reward"). Suffers
    /// from the huge variance of metrics like bsld across sequences.
    Native,
    /// `sign(m_orig − m_inspect)` — counts wins ("Win/Loss reward"). Bias
    /// free but blind to the size of the gain.
    WinLoss,
    /// `(m_orig − m_inspect) / m_orig` — the paper's contribution
    /// ("Percentage reward"): variance-normalized yet still rewarding
    /// big-gain actions.
    Percentage,
}

impl RewardKind {
    /// Compute the trajectory reward from the base-policy metric value
    /// (`orig`) and the inspected metric value (`inspected`).
    pub fn compute(&self, orig: f64, inspected: f64) -> f32 {
        match self {
            RewardKind::Native => (orig - inspected) as f32,
            RewardKind::WinLoss => {
                if inspected < orig {
                    1.0
                } else if inspected > orig {
                    -1.0
                } else {
                    0.0
                }
            }
            RewardKind::Percentage => {
                if orig.abs() < 1e-12 {
                    // A zero-cost baseline cannot be improved upon; any
                    // degradation is fully penalized.
                    if inspected > 0.0 {
                        -1.0
                    } else {
                        0.0
                    }
                } else {
                    ((orig - inspected) / orig) as f32
                }
            }
        }
    }

    /// Name as used in the paper's Fig. 6.
    pub fn name(&self) -> &'static str {
        match self {
            RewardKind::Native => "native",
            RewardKind::WinLoss => "win/loss",
            RewardKind::Percentage => "percentage",
        }
    }
}

impl std::str::FromStr for RewardKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "native" => Ok(RewardKind::Native),
            "winloss" | "win/loss" => Ok(RewardKind::WinLoss),
            "percentage" | "pct" => Ok(RewardKind::Percentage),
            other => Err(format!("unknown reward kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_is_difference() {
        assert_eq!(RewardKind::Native.compute(10.0, 4.0), 6.0);
        assert_eq!(RewardKind::Native.compute(4.0, 10.0), -6.0);
    }

    #[test]
    fn winloss_is_sign() {
        assert_eq!(RewardKind::WinLoss.compute(10.0, 4.0), 1.0);
        assert_eq!(RewardKind::WinLoss.compute(4.0, 10.0), -1.0);
        assert_eq!(RewardKind::WinLoss.compute(5.0, 5.0), 0.0);
    }

    #[test]
    fn percentage_normalizes_variance() {
        // A 50% gain on a huge-bsld sequence equals a 50% gain on a tiny one.
        let big = RewardKind::Percentage.compute(2414.0, 1207.0);
        let small = RewardKind::Percentage.compute(2.0, 1.0);
        assert!((big - 0.5).abs() < 1e-6);
        assert!((small - 0.5).abs() < 1e-6);
    }

    #[test]
    fn percentage_rewards_big_gains_more() {
        let big = RewardKind::Percentage.compute(100.0, 10.0);
        let small = RewardKind::Percentage.compute(100.0, 90.0);
        assert!(big > small);
    }

    #[test]
    fn percentage_zero_baseline_guard() {
        assert_eq!(RewardKind::Percentage.compute(0.0, 0.0), 0.0);
        assert_eq!(RewardKind::Percentage.compute(0.0, 5.0), -1.0);
    }

    #[test]
    fn parsing() {
        assert_eq!(
            "percentage".parse::<RewardKind>().unwrap(),
            RewardKind::Percentage
        );
        assert_eq!(
            "win/loss".parse::<RewardKind>().unwrap(),
            RewardKind::WinLoss
        );
        assert_eq!("NATIVE".parse::<RewardKind>().unwrap(), RewardKind::Native);
        assert!("x".parse::<RewardKind>().is_err());
    }
}
