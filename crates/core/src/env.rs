//! The RL environment: one episode = one job sequence scheduled twice —
//! once by the base policy alone (the reward baseline) and once with the
//! inspector in the loop.

use std::sync::Arc;

use obs::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlcore::{BinaryPolicy, PolicyScratch, Step, Trajectory, REJECT};
use simhpc::{InspectorHook, Metric, Observation, SchedulingPolicy, SimResult, Simulator};
use workload::{Job, JobTrace};

use crate::features::FeatureBuilder;
use crate::reward::RewardKind;

/// Constructs fresh base-policy instances. Needed because stateful policies
/// (Slurm fairshare) must not leak accounting between the baseline run, the
/// inspected run, and parallel rollout workers.
pub type PolicyFactory = Arc<dyn Fn() -> Box<dyn SchedulingPolicy + Send> + Send + Sync>;

/// Factory for a stateless Table 3 policy.
pub fn factory_for(kind: policies::PolicyKind) -> PolicyFactory {
    Arc::new(move || kind.build())
}

/// Factory for the Slurm multifactor policy, with shares derived from
/// `trace` (§4.5).
pub fn slurm_factory(trace: &JobTrace) -> PolicyFactory {
    let template = policies::SlurmMultifactor::from_trace(trace);
    Arc::new(move || {
        let mut p = template.clone();
        p.reset_usage();
        Box::new(p)
    })
}

/// Everything produced by one episode.
#[derive(Debug, Clone)]
pub struct Episode {
    /// The RL trajectory (states, actions, log-probs, terminal reward).
    pub trajectory: Trajectory,
    /// Result of the base policy alone on the same sequence. Shared
    /// ([`Arc`]) because the same base run backs every episode drawn from
    /// the same start offset via the [`BaselineCache`](crate::BaselineCache).
    pub base: Arc<SimResult>,
    /// Result with the inspector in the loop.
    pub inspected: SimResult,
}

/// An [`InspectorHook`] that queries an RL policy and records each decision.
struct CollectingHook<'a> {
    policy: &'a BinaryPolicy,
    features: &'a FeatureBuilder,
    rng: StdRng,
    stochastic: bool,
    steps: Vec<Step>,
    buf: Vec<f32>,
    scratch: PolicyScratch,
}

impl InspectorHook for CollectingHook<'_> {
    fn inspect(&mut self, obs: &Observation) -> bool {
        self.features.build(obs, &mut self.buf);
        let (action, logp) = if self.stochastic {
            self.policy
                .sample_scratch(&self.buf, &mut self.rng, &mut self.scratch)
        } else {
            self.policy.greedy_scratch(&self.buf, &mut self.scratch)
        };
        self.steps.push(Step {
            state: self.buf.clone(),
            action,
            logp,
        });
        action == REJECT
    }
}

/// Everything [`run_episode`] needs, as an options struct.
///
/// The five required references go through [`EpisodeSpec::new`]; every
/// knob that used to be a positional argument is a public field with a
/// training-shaped default. Construct with struct-update syntax:
///
/// ```ignore
/// let episode = run_episode(&EpisodeSpec {
///     seed: 42,
///     base: Some(cached_base),
///     ..EpisodeSpec::new(&sim, &jobs, &factory, &policy, &features)
/// });
/// ```
#[derive(Clone)]
pub struct EpisodeSpec<'a> {
    /// Simulator to run both schedules on.
    pub sim: &'a Simulator,
    /// The job sequence (submit times rebased to 0).
    pub jobs: &'a [Job],
    /// Fresh base-policy instances for the base and inspected runs.
    pub factory: &'a PolicyFactory,
    /// The inspector policy being queried at every scheduling point.
    pub policy: &'a BinaryPolicy,
    /// Feature builder translating observations into policy inputs.
    pub features: &'a FeatureBuilder,
    /// Reward function for the terminal reward (default: percentage).
    pub reward: RewardKind,
    /// Metric the reward compares (default: bsld).
    pub metric: Metric,
    /// Per-episode RNG seed for sampled actions (default: 0).
    pub seed: u64,
    /// Sampled actions (training, default) vs. greedy actions (deployment).
    pub stochastic: bool,
    /// An already-computed base run (e.g. from a
    /// [`BaselineCache`](crate::BaselineCache)); `None` re-simulates the
    /// base policy here.
    pub base: Option<Arc<SimResult>>,
    /// Telemetry for the inspected run's per-scheduling-point event stream
    /// (default: disabled).
    pub telemetry: Telemetry,
}

impl<'a> EpisodeSpec<'a> {
    /// A spec with training-shaped defaults: percentage reward, bsld
    /// metric, seed 0, stochastic actions, no cached base, telemetry off.
    pub fn new(
        sim: &'a Simulator,
        jobs: &'a [Job],
        factory: &'a PolicyFactory,
        policy: &'a BinaryPolicy,
        features: &'a FeatureBuilder,
    ) -> Self {
        EpisodeSpec {
            sim,
            jobs,
            factory,
            policy,
            features,
            reward: RewardKind::Percentage,
            metric: Metric::Bsld,
            seed: 0,
            stochastic: true,
            base: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Run one episode described by `spec`: the base run (reused from
/// `spec.base` when present), the inspected run, and the terminal reward
/// comparing the two under `spec.reward`/`spec.metric`.
pub fn run_episode(spec: &EpisodeSpec) -> Episode {
    let base = match &spec.base {
        Some(base) => base.clone(),
        None => {
            let mut base_policy = (spec.factory)();
            Arc::new(spec.sim.run(spec.jobs, base_policy.as_mut()))
        }
    };
    let mut inspected_policy = (spec.factory)();
    let mut hook = CollectingHook {
        policy: spec.policy,
        features: spec.features,
        rng: StdRng::seed_from_u64(spec.seed),
        stochastic: spec.stochastic,
        steps: Vec::new(),
        buf: Vec::with_capacity(spec.features.dim()),
        scratch: PolicyScratch::default(),
    };
    let inspected = spec.sim.run_traced(
        spec.jobs,
        inspected_policy.as_mut(),
        &mut hook,
        &spec.telemetry,
    );

    let r = spec
        .reward
        .compute(base.metric(spec.metric), inspected.metric(spec.metric));
    Episode {
        trajectory: Trajectory {
            steps: hook.steps,
            reward: r,
        },
        base,
        inspected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureMode, Normalizer};
    use policies::PolicyKind;
    use simhpc::SimConfig;

    fn jobs() -> Vec<Job> {
        (0..12)
            .map(|i| {
                Job::new(
                    i + 1,
                    i as f64 * 30.0,
                    60.0 + (i % 4) as f64 * 120.0,
                    120.0 + (i % 4) as f64 * 240.0,
                    1 + (i % 3) as u32,
                )
            })
            .collect()
    }

    fn setup() -> (Simulator, FeatureBuilder, PolicyFactory) {
        let sim = Simulator::new(4, SimConfig::default());
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(4, 600.0),
        };
        (sim, fb, factory_for(PolicyKind::Sjf))
    }

    #[test]
    fn episode_records_one_step_per_inspection() {
        let (sim, fb, factory) = setup();
        let policy = BinaryPolicy::new(fb.dim(), 0);
        let jobs = jobs();
        let ep = run_episode(&EpisodeSpec {
            seed: 1,
            ..EpisodeSpec::new(&sim, &jobs, &factory, &policy, &fb)
        });
        assert_eq!(ep.trajectory.len() as u64, ep.inspected.inspections);
        assert_eq!(ep.base.outcomes.len(), 12);
        assert_eq!(ep.inspected.outcomes.len(), 12);
        assert!(ep.trajectory.reward.is_finite());
    }

    #[test]
    fn greedy_episodes_are_deterministic() {
        let (sim, fb, factory) = setup();
        let policy = BinaryPolicy::new(fb.dim(), 3);
        let jobs = jobs();
        let run = |seed| {
            run_episode(&EpisodeSpec {
                seed,
                stochastic: false,
                ..EpisodeSpec::new(&sim, &jobs, &factory, &policy, &fb)
            })
        };
        let a = run(1);
        let b = run(999); // greedy ignores the seed
        assert_eq!(a.inspected, b.inspected);
        assert_eq!(a.trajectory.reward, b.trajectory.reward);
    }

    #[test]
    fn stochastic_episodes_vary_with_seed() {
        let (sim, fb, factory) = setup();
        let policy = BinaryPolicy::new(fb.dim(), 3);
        let jobs = jobs();
        let run = |seed| {
            run_episode(&EpisodeSpec {
                seed,
                ..EpisodeSpec::new(&sim, &jobs, &factory, &policy, &fb)
            })
            .trajectory
        };
        // With a fresh policy p(reject) ≈ 0.5, so some seed differs.
        let base = run(0);
        let differs = (1..10).any(|s| run(s) != base);
        assert!(differs, "sampled trajectories should vary across seeds");
    }

    #[test]
    fn cached_base_short_circuits_the_base_run() {
        let (sim, fb, factory) = setup();
        let policy = BinaryPolicy::new(fb.dim(), 3);
        let jobs = jobs();
        let fresh = run_episode(&EpisodeSpec {
            stochastic: false,
            ..EpisodeSpec::new(&sim, &jobs, &factory, &policy, &fb)
        });
        let cached = run_episode(&EpisodeSpec {
            stochastic: false,
            base: Some(fresh.base.clone()),
            ..EpisodeSpec::new(&sim, &jobs, &factory, &policy, &fb)
        });
        assert!(Arc::ptr_eq(&fresh.base, &cached.base));
        assert_eq!(fresh.inspected, cached.inspected);
        assert_eq!(fresh.trajectory.reward, cached.trajectory.reward);
    }

    #[test]
    fn episode_telemetry_streams_scheduling_points() {
        let (sim, fb, factory) = setup();
        let policy = BinaryPolicy::new(fb.dim(), 0);
        let jobs = jobs();
        let (telemetry, sink) = Telemetry::in_memory();
        let ep = run_episode(&EpisodeSpec {
            telemetry,
            ..EpisodeSpec::new(&sim, &jobs, &factory, &policy, &fb)
        });
        let decisions = sink.counter_total("sim.accept") + sink.counter_total("sim.reject");
        assert_eq!(decisions, ep.inspected.inspections);
        assert_eq!(sink.counter_total("sim.reject"), ep.inspected.rejections);
        for u in sink.gauge_values("sim.util") {
            assert!((0.0..=1.0).contains(&u), "utilization out of range: {u}");
        }
    }

    #[test]
    fn never_rejecting_policy_matches_base_run() {
        let (sim, _fb, factory) = setup();
        // Force accept by biasing: a greedy untrained policy may reject, so
        // test via a closure-driven run instead: inspected == base when no
        // rejection happens.
        struct Never;
        impl InspectorHook for Never {
            fn inspect(&mut self, _: &Observation) -> bool {
                false
            }
        }
        let mut base_policy = factory();
        let base = sim.run(&jobs(), base_policy.as_mut());
        let mut p2 = factory();
        let mut never = Never;
        let inspected = sim.run_inspected(&jobs(), p2.as_mut(), &mut never);
        assert_eq!(base.outcomes, inspected.outcomes);
    }

    #[test]
    fn slurm_factory_resets_usage() {
        let trace = JobTrace::new("t", 8, jobs()).unwrap();
        let factory = slurm_factory(&trace);
        let sim = Simulator::new(8, SimConfig::default());
        let r1 = sim.run(&jobs(), factory().as_mut());
        let r2 = sim.run(&jobs(), factory().as_mut());
        assert_eq!(r1, r2, "fresh instances must not share fairshare state");
    }
}
