//! The RL environment: one episode = one job sequence scheduled twice —
//! once by the base policy alone (the reward baseline) and once with the
//! inspector in the loop.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlcore::{BinaryPolicy, PolicyScratch, Step, Trajectory, REJECT};
use simhpc::{InspectorHook, Metric, Observation, SchedulingPolicy, SimResult, Simulator};
use workload::{Job, JobTrace};

use crate::features::FeatureBuilder;
use crate::reward::RewardKind;

/// Constructs fresh base-policy instances. Needed because stateful policies
/// (Slurm fairshare) must not leak accounting between the baseline run, the
/// inspected run, and parallel rollout workers.
pub type PolicyFactory = Arc<dyn Fn() -> Box<dyn SchedulingPolicy + Send> + Send + Sync>;

/// Factory for a stateless Table 3 policy.
pub fn factory_for(kind: policies::PolicyKind) -> PolicyFactory {
    Arc::new(move || kind.build())
}

/// Factory for the Slurm multifactor policy, with shares derived from
/// `trace` (§4.5).
pub fn slurm_factory(trace: &JobTrace) -> PolicyFactory {
    let template = policies::SlurmMultifactor::from_trace(trace);
    Arc::new(move || {
        let mut p = template.clone();
        p.reset_usage();
        Box::new(p)
    })
}

/// Everything produced by one episode.
#[derive(Debug, Clone)]
pub struct Episode {
    /// The RL trajectory (states, actions, log-probs, terminal reward).
    pub trajectory: Trajectory,
    /// Result of the base policy alone on the same sequence. Shared
    /// ([`Arc`]) because the same base run backs every episode drawn from
    /// the same start offset via the [`BaselineCache`](crate::BaselineCache).
    pub base: Arc<SimResult>,
    /// Result with the inspector in the loop.
    pub inspected: SimResult,
}

/// An [`InspectorHook`] that queries an RL policy and records each decision.
struct CollectingHook<'a> {
    policy: &'a BinaryPolicy,
    features: &'a FeatureBuilder,
    rng: StdRng,
    stochastic: bool,
    steps: Vec<Step>,
    buf: Vec<f32>,
    scratch: PolicyScratch,
}

impl InspectorHook for CollectingHook<'_> {
    fn inspect(&mut self, obs: &Observation) -> bool {
        self.features.build(obs, &mut self.buf);
        let (action, logp) = if self.stochastic {
            self.policy
                .sample_scratch(&self.buf, &mut self.rng, &mut self.scratch)
        } else {
            self.policy.greedy_scratch(&self.buf, &mut self.scratch)
        };
        self.steps.push(Step {
            state: self.buf.clone(),
            action,
            logp,
        });
        action == REJECT
    }
}

/// Run one episode. `stochastic` selects sampled actions (training) vs.
/// greedy actions (deployment/evaluation). The terminal reward compares the
/// inspected run against the base-policy run under `reward`/`metric`.
#[allow(clippy::too_many_arguments)]
pub fn run_episode(
    sim: &Simulator,
    jobs: &[Job],
    factory: &PolicyFactory,
    policy: &BinaryPolicy,
    features: &FeatureBuilder,
    reward: RewardKind,
    metric: Metric,
    seed: u64,
    stochastic: bool,
) -> Episode {
    let mut base_policy = factory();
    let base = Arc::new(sim.run(jobs, base_policy.as_mut()));
    run_episode_with_base(
        sim, jobs, factory, base, policy, features, reward, metric, seed, stochastic,
    )
}

/// Like [`run_episode`], but against an already-computed base result (from a
/// [`BaselineCache`](crate::BaselineCache)), skipping the base simulation.
#[allow(clippy::too_many_arguments)]
pub fn run_episode_with_base(
    sim: &Simulator,
    jobs: &[Job],
    factory: &PolicyFactory,
    base: Arc<SimResult>,
    policy: &BinaryPolicy,
    features: &FeatureBuilder,
    reward: RewardKind,
    metric: Metric,
    seed: u64,
    stochastic: bool,
) -> Episode {
    let mut inspected_policy = factory();
    let mut hook = CollectingHook {
        policy,
        features,
        rng: StdRng::seed_from_u64(seed),
        stochastic,
        steps: Vec::new(),
        buf: Vec::with_capacity(features.dim()),
        scratch: PolicyScratch::default(),
    };
    let inspected = sim.run_inspected(jobs, inspected_policy.as_mut(), &mut hook);

    let r = reward.compute(base.metric(metric), inspected.metric(metric));
    Episode {
        trajectory: Trajectory {
            steps: hook.steps,
            reward: r,
        },
        base,
        inspected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureMode, Normalizer};
    use policies::PolicyKind;
    use simhpc::SimConfig;

    fn jobs() -> Vec<Job> {
        (0..12)
            .map(|i| {
                Job::new(
                    i + 1,
                    i as f64 * 30.0,
                    60.0 + (i % 4) as f64 * 120.0,
                    120.0 + (i % 4) as f64 * 240.0,
                    1 + (i % 3) as u32,
                )
            })
            .collect()
    }

    fn setup() -> (Simulator, FeatureBuilder, PolicyFactory) {
        let sim = Simulator::new(4, SimConfig::default());
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(4, 600.0),
        };
        (sim, fb, factory_for(PolicyKind::Sjf))
    }

    #[test]
    fn episode_records_one_step_per_inspection() {
        let (sim, fb, factory) = setup();
        let policy = BinaryPolicy::new(fb.dim(), 0);
        let ep = run_episode(
            &sim,
            &jobs(),
            &factory,
            &policy,
            &fb,
            RewardKind::Percentage,
            Metric::Bsld,
            1,
            true,
        );
        assert_eq!(ep.trajectory.len() as u64, ep.inspected.inspections);
        assert_eq!(ep.base.outcomes.len(), 12);
        assert_eq!(ep.inspected.outcomes.len(), 12);
        assert!(ep.trajectory.reward.is_finite());
    }

    #[test]
    fn greedy_episodes_are_deterministic() {
        let (sim, fb, factory) = setup();
        let policy = BinaryPolicy::new(fb.dim(), 3);
        let run = |seed| {
            run_episode(
                &sim,
                &jobs(),
                &factory,
                &policy,
                &fb,
                RewardKind::Percentage,
                Metric::Bsld,
                seed,
                false,
            )
        };
        let a = run(1);
        let b = run(999); // greedy ignores the seed
        assert_eq!(a.inspected, b.inspected);
        assert_eq!(a.trajectory.reward, b.trajectory.reward);
    }

    #[test]
    fn stochastic_episodes_vary_with_seed() {
        let (sim, fb, factory) = setup();
        let policy = BinaryPolicy::new(fb.dim(), 3);
        let run = |seed| {
            run_episode(
                &sim,
                &jobs(),
                &factory,
                &policy,
                &fb,
                RewardKind::Percentage,
                Metric::Bsld,
                seed,
                true,
            )
            .trajectory
        };
        // With a fresh policy p(reject) ≈ 0.5, so some seed differs.
        let base = run(0);
        let differs = (1..10).any(|s| run(s) != base);
        assert!(differs, "sampled trajectories should vary across seeds");
    }

    #[test]
    fn never_rejecting_policy_matches_base_run() {
        let (sim, _fb, factory) = setup();
        // Force accept by biasing: a greedy untrained policy may reject, so
        // test via a closure-driven run instead: inspected == base when no
        // rejection happens.
        struct Never;
        impl InspectorHook for Never {
            fn inspect(&mut self, _: &Observation) -> bool {
                false
            }
        }
        let mut base_policy = factory();
        let base = sim.run(&jobs(), base_policy.as_mut());
        let mut p2 = factory();
        let mut never = Never;
        let inspected = sim.run_inspected(&jobs(), p2.as_mut(), &mut never);
        assert_eq!(base.outcomes, inspected.outcomes);
    }

    #[test]
    fn slurm_factory_resets_usage() {
        let trace = JobTrace::new("t", 8, jobs()).unwrap();
        let factory = slurm_factory(&trace);
        let sim = Simulator::new(8, SimConfig::default());
        let r1 = sim.run(&jobs(), factory().as_mut());
        let r2 = sim.run(&jobs(), factory().as_mut());
        assert_eq!(r1, r2, "fresh instances must not share fairshare state");
    }
}
