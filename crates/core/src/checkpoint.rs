//! Mid-training checkpoints: the complete trainer state needed to
//! resume a killed run **bit-identically**.
//!
//! A checkpoint captures everything that evolves across epochs — both
//! networks and both Adam optimizers (moment vectors and step counts) —
//! plus the epoch count and seed. What it deliberately does *not*
//! capture:
//!
//! * the trainer RNG — the rand crate's `StdRng` exposes no state
//!   accessors, but its consumption pattern is exactly `batch_size`
//!   bounded draws per epoch (zero when the trace admits only one start
//!   offset), so [`Trainer::restore`](crate::Trainer::restore)
//!   fast-forwards a fresh seeded RNG by replaying that many draws;
//! * the baseline cache — proven bit-identical on/off by the trainer's
//!   `cached_and_uncached_training_are_bit_identical` test;
//! * the trace, features, and config — rebuilt deterministically from
//!   the same CLI arguments / builder inputs on resume.
//!
//! The text format composes the existing exact-roundtrip encodings
//! (`tinynn-mlp v1`, `tinynn-adam v1`) under one header:
//!
//! ```text
//! schedinspector-checkpoint v1
//! epochs_done 3
//! seed 42
//! policy
//! <tinynn-mlp v1 …>
//! critic
//! <tinynn-mlp v1 …>
//! pi_opt
//! <tinynn-adam v1 …>
//! vf_opt
//! <tinynn-adam v1 …>
//! ```

use rlcore::{BinaryPolicy, PpoTrainer, ValueNet};
use tinynn::{Adam, Mlp};

const HEADER: &str = "schedinspector-checkpoint v1";
const SECTIONS: [&str; 4] = ["policy", "critic", "pi_opt", "vf_opt"];

/// A parsed training checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Fully completed epochs (resume continues at this epoch index).
    pub epochs_done: usize,
    /// Training seed the run was started with (validated on restore).
    pub seed: u64,
    /// The policy network.
    pub policy: BinaryPolicy,
    /// The critic network.
    pub critic: ValueNet,
    /// Policy optimizer state.
    pub pi_opt: Adam,
    /// Critic optimizer state.
    pub vf_opt: Adam,
}

impl Checkpoint {
    /// Snapshot a PPO trainer after `epochs_done` completed epochs.
    pub fn from_ppo(ppo: &PpoTrainer, epochs_done: usize, seed: u64) -> Self {
        let (pi_opt, vf_opt) = ppo.optimizers();
        Checkpoint {
            epochs_done,
            seed,
            policy: ppo.policy.clone(),
            critic: ppo.critic.clone(),
            pi_opt: pi_opt.clone(),
            vf_opt: vf_opt.clone(),
        }
    }

    /// Serialize. Exact: `from_text(to_text(c))` reproduces every bit,
    /// and equal trainer states produce byte-equal text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("epochs_done {}\n", self.epochs_done));
        out.push_str(&format!("seed {}\n", self.seed));
        for (name, body) in SECTIONS.iter().zip([
            self.policy.mlp().to_text(),
            self.critic.mlp().to_text(),
            self.pi_opt.to_text(),
            self.vf_opt.to_text(),
        ]) {
            out.push_str(name);
            out.push('\n');
            out.push_str(&body);
        }
        out
    }

    /// Parse checkpoint text.
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(format!("bad checkpoint header (expected {HEADER:?})"));
        }
        let epochs_done: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("epochs_done "))
            .ok_or("missing epochs_done line")?
            .trim()
            .parse()
            .map_err(|e| format!("bad epochs_done: {e}"))?;
        let seed: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("seed "))
            .ok_or("missing seed line")?
            .trim()
            .parse()
            .map_err(|e| format!("bad seed: {e}"))?;

        // Split the rest into the four named sections. Section marker
        // lines are bare names, which never collide with the payload
        // formats (every payload line starts with a known keyword and
        // at least one argument).
        let mut bodies: Vec<String> = Vec::new();
        let mut current: Option<String> = None;
        let mut expected = SECTIONS.iter();
        for line in lines {
            if SECTIONS.contains(&line.trim()) {
                let want = expected
                    .next()
                    .ok_or_else(|| format!("unexpected extra section {:?}", line.trim()))?;
                if line.trim() != *want {
                    return Err(format!(
                        "section {:?} out of order (expected {want:?})",
                        line.trim()
                    ));
                }
                if let Some(done) = current.take() {
                    bodies.push(done);
                }
                current = Some(String::new());
            } else if let Some(body) = current.as_mut() {
                body.push_str(line);
                body.push('\n');
            } else if !line.trim().is_empty() {
                return Err(format!("unexpected content before sections: {line:?}"));
            }
        }
        if let Some(done) = current.take() {
            bodies.push(done);
        }
        if bodies.len() != SECTIONS.len() {
            return Err(format!(
                "expected {} sections, found {}",
                SECTIONS.len(),
                bodies.len()
            ));
        }

        let policy_net = Mlp::from_text(&bodies[0]).map_err(|e| format!("policy section: {e}"))?;
        let policy =
            BinaryPolicy::from_mlp(policy_net).map_err(|e| format!("policy section: {e}"))?;
        let critic_net = Mlp::from_text(&bodies[1]).map_err(|e| format!("critic section: {e}"))?;
        let critic = ValueNet::from_mlp(critic_net).map_err(|e| format!("critic section: {e}"))?;
        let pi_opt = Adam::from_text(&bodies[2], policy.param_count())
            .map_err(|e| format!("pi_opt section: {e}"))?;
        let vf_opt = Adam::from_text(&bodies[3], critic.param_count())
            .map_err(|e| format!("vf_opt section: {e}"))?;
        Ok(Checkpoint {
            epochs_done,
            seed,
            policy,
            critic,
            pi_opt,
            vf_opt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlcore::PpoConfig;

    #[test]
    fn text_roundtrips_bit_identically() {
        let ppo = PpoTrainer::new(7, PpoConfig::default(), 42);
        let ck = Checkpoint::from_ppo(&ppo, 3, 42);
        let text = ck.to_text();
        let back = Checkpoint::from_text(&text).unwrap();
        assert_eq!(back.epochs_done, 3);
        assert_eq!(back.seed, 42);
        assert_eq!(back.to_text(), text, "re-serialization must be byte-equal");
        assert_eq!(back.policy.mlp().to_text(), ppo.policy.mlp().to_text());
        let (pi, vf) = ppo.optimizers();
        assert_eq!(&back.pi_opt, pi);
        assert_eq!(&back.vf_opt, vf);
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(Checkpoint::from_text("").is_err());
        assert!(Checkpoint::from_text("wrong header\n").is_err());
        let ppo = PpoTrainer::new(5, PpoConfig::default(), 1);
        let text = Checkpoint::from_ppo(&ppo, 0, 1).to_text();
        // Drop a section marker.
        let broken = text.replacen("vf_opt\n", "", 1);
        assert!(Checkpoint::from_text(&broken).is_err());
        // Corrupt a float count inside the policy.
        let broken = text.replacen("layers 4", "layers 9", 1);
        assert!(Checkpoint::from_text(&broken).is_err());
    }
}
