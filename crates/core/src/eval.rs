//! Evaluation on held-out job sequences (§4.4: 50 random 256-job sequences
//! from the testing dataset, scheduled by the base policy and its
//! inspector-enabled counterpart).

use rlcore::parallel_map;
use serde::{Deserialize, Serialize};
use simhpc::{Metric, SimConfig, SimResult, Simulator};
use workload::{JobTrace, SequenceSampler};

use crate::agent::SchedInspector;
use crate::baseline::BaselineCache;
use crate::env::PolicyFactory;

/// One evaluated sequence: base vs. inspected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalCase {
    /// Start index of the sequence in the test trace.
    pub start: usize,
    /// Base-policy result.
    pub base: SimResult,
    /// Inspector-enabled result.
    pub inspected: SimResult,
}

/// Results over all evaluated sequences.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EvalReport {
    /// Per-sequence outcomes.
    pub cases: Vec<EvalCase>,
}

impl EvalReport {
    /// Mean base-policy value of `metric`.
    pub fn mean_base(&self, metric: Metric) -> f64 {
        mean(self.cases.iter().map(|c| c.base.metric(metric)))
    }

    /// Mean inspected value of `metric`.
    pub fn mean_inspected(&self, metric: Metric) -> f64 {
        mean(self.cases.iter().map(|c| c.inspected.metric(metric)))
    }

    /// Relative improvement of the mean: `(base − inspected) / base`.
    pub fn improvement_pct(&self, metric: Metric) -> f64 {
        let b = self.mean_base(metric);
        if b.abs() < 1e-12 {
            0.0
        } else {
            (b - self.mean_inspected(metric)) / b
        }
    }

    /// Mean system utilization of the base runs.
    pub fn mean_base_util(&self) -> f64 {
        mean(self.cases.iter().map(|c| c.base.util()))
    }

    /// Mean system utilization of the inspected runs.
    pub fn mean_inspected_util(&self) -> f64 {
        mean(self.cases.iter().map(|c| c.inspected.util()))
    }

    /// Per-sequence values of `metric` (base, inspected) — the dots of the
    /// paper's box-and-whisker plots (Figs. 8, 10).
    pub fn series(&self, metric: Metric) -> Vec<(f64, f64)> {
        self.cases
            .iter()
            .map(|c| (c.base.metric(metric), c.inspected.metric(metric)))
            .collect()
    }

    /// Overall rejection ratio across inspected runs.
    pub fn rejection_ratio(&self) -> f64 {
        let (r, i) = self.cases.iter().fold((0u64, 0u64), |(r, i), c| {
            (r + c.inspected.rejections, i + c.inspected.inspections)
        });
        if i == 0 {
            0.0
        } else {
            r as f64 / i as f64
        }
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Evaluate a trained inspector on `n_seqs` random sequences of `seq_len`
/// jobs sampled from `trace` (use the test split).
///
/// Inference is *stochastic with a per-sequence seed* — §4 states that at
/// inference time "SchedInspector acts similarly as it does in the
/// training process", and sampled actions are far more robust than
/// thresholded (greedy) ones, which amplify marginal preferences into
/// rejection cascades. Results are still fully deterministic for a fixed
/// `seed`.
#[allow(clippy::too_many_arguments)]
pub fn evaluate(
    inspector: &SchedInspector,
    trace: &JobTrace,
    factory: &PolicyFactory,
    sim_config: SimConfig,
    n_seqs: usize,
    seq_len: usize,
    seed: u64,
    workers: usize,
) -> EvalReport {
    let sim = Simulator::new(trace.procs, sim_config);
    let mut sampler = SequenceSampler::new(trace.clone(), seq_len, seed);
    let sequences = sampler.sample_many(n_seqs);
    let workers = if workers == 0 {
        rlcore::default_workers(n_seqs)
    } else {
        workers
    };
    let baseline = BaselineCache::new();
    let cases = parallel_map(n_seqs, workers, |i| {
        let (start, jobs) = &sequences[i];
        let base = baseline.get_or_run(*start, || {
            let mut p = factory();
            sim.run(jobs, p.as_mut())
        });
        let episode = crate::env::run_episode(&crate::env::EpisodeSpec {
            seed: seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            base: Some(base),
            ..crate::env::EpisodeSpec::new(
                &sim,
                jobs,
                factory,
                &inspector.policy,
                &inspector.features,
            )
        });
        EvalCase {
            start: *start,
            base: (*episode.base).clone(),
            inspected: episode.inspected,
        }
    });
    EvalReport { cases }
}

/// Evaluate the base policy against itself (sanity harness for experiments
/// that need base-only numbers).
pub fn evaluate_base(
    trace: &JobTrace,
    factory: &PolicyFactory,
    sim_config: SimConfig,
    n_seqs: usize,
    seq_len: usize,
    seed: u64,
) -> Vec<SimResult> {
    let sim = Simulator::new(trace.procs, sim_config);
    let mut sampler = SequenceSampler::new(trace.clone(), seq_len, seed);
    sampler
        .sample_many(n_seqs)
        .into_iter()
        .map(|(_, jobs)| {
            let mut p = factory();
            sim.run(&jobs, p.as_mut())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::factory_for;
    use crate::features::{FeatureBuilder, FeatureMode, Normalizer};
    use policies::PolicyKind;
    use rlcore::BinaryPolicy;
    use workload::Job;

    fn trace() -> JobTrace {
        let jobs = (0..300u64)
            .map(|i| {
                Job::new(
                    i + 1,
                    i as f64 * 100.0,
                    200.0 + (i % 7) as f64 * 400.0,
                    400.0 + (i % 7) as f64 * 600.0,
                    1 + (i % 4) as u32,
                )
            })
            .collect();
        JobTrace::new("eval", 8, jobs).unwrap()
    }

    fn inspector() -> SchedInspector {
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(8, 5000.0),
        };
        SchedInspector::new(BinaryPolicy::new(fb.dim(), 7), fb)
    }

    #[test]
    fn report_has_requested_cases() {
        let rep = evaluate(
            &inspector(),
            &trace(),
            &factory_for(PolicyKind::Sjf),
            SimConfig::default(),
            8,
            32,
            1,
            2,
        );
        assert_eq!(rep.cases.len(), 8);
        assert!(rep.mean_base(Metric::Bsld) >= 1.0);
        assert!(rep.mean_inspected(Metric::Bsld) >= 1.0);
        assert!(rep.mean_base_util() > 0.0 && rep.mean_base_util() <= 1.0);
        assert_eq!(rep.series(Metric::Bsld).len(), 8);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let run = || {
            evaluate(
                &inspector(),
                &trace(),
                &factory_for(PolicyKind::Sjf),
                SimConfig::default(),
                5,
                32,
                42,
                3,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_report_means_are_zero() {
        let rep = EvalReport::default();
        assert_eq!(rep.mean_base(Metric::Bsld), 0.0);
        assert_eq!(rep.improvement_pct(Metric::Bsld), 0.0);
        assert_eq!(rep.rejection_ratio(), 0.0);
    }

    #[test]
    fn evaluate_base_matches_eval_base_side() {
        let factory = factory_for(PolicyKind::Sjf);
        let rep = evaluate(
            &inspector(),
            &trace(),
            &factory,
            SimConfig::default(),
            4,
            32,
            7,
            1,
        );
        let base = evaluate_base(&trace(), &factory, SimConfig::default(), 4, 32, 7);
        for (c, b) in rep.cases.iter().zip(&base) {
            assert_eq!(&c.base, b);
        }
    }
}
