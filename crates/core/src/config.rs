//! Top-level SchedInspector configuration.

use serde::{Deserialize, Serialize};
use simhpc::{Metric, SimConfig};

use crate::features::FeatureMode;
use crate::reward::RewardKind;

/// Everything that defines a SchedInspector training run.
///
/// Defaults are the paper's (§4.1): percentage reward, manually built
/// features, batches of 100 trajectories of 128 sequential jobs, PPO at
/// lr 1e-3, `MAX_INTERVAL` 600 s, `MAX_REJECTION_TIMES` 72.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InspectorConfig {
    /// The job-execution metric being optimized.
    pub metric: Metric,
    /// Feature-building mechanism (§3.3 / Fig. 5 ablation).
    pub features: FeatureMode,
    /// Reward function (§3.4 / Fig. 6 ablation).
    pub reward: RewardKind,
    /// Simulator settings (backfilling, MAX_INTERVAL, MAX_REJECTION_TIMES).
    pub sim: SimConfig,
    /// Trajectories per model update.
    pub batch_size: usize,
    /// Sequential jobs per training trajectory.
    pub seq_len: usize,
    /// Training epochs (model updates).
    pub epochs: usize,
    /// Base RNG seed (episodes derive sub-seeds deterministically).
    pub seed: u64,
    /// Rollout worker threads (0 = number of cores).
    pub workers: usize,
    /// Memoize base-policy runs by sequence start offset (see
    /// [`BaselineCache`](crate::BaselineCache)). Baseline results are exact
    /// either way — disabling only costs redundant simulation; the switch
    /// exists for equivalence testing and benchmarking.
    pub baseline_cache: bool,
}

impl Default for InspectorConfig {
    fn default() -> Self {
        InspectorConfig {
            metric: Metric::Bsld,
            features: FeatureMode::Manual,
            reward: RewardKind::Percentage,
            sim: SimConfig::default(),
            batch_size: 100,
            seq_len: 128,
            epochs: 50,
            seed: 0,
            workers: 0,
            baseline_cache: true,
        }
    }
}

impl InspectorConfig {
    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        InspectorConfig {
            batch_size: 16,
            seq_len: 48,
            epochs: 8,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = InspectorConfig::default();
        assert_eq!(c.batch_size, 100);
        assert_eq!(c.seq_len, 128);
        assert_eq!(c.metric, Metric::Bsld);
        assert_eq!(c.reward, RewardKind::Percentage);
        assert_eq!(c.features, FeatureMode::Manual);
        assert_eq!(c.sim.max_interval, 600.0);
        assert_eq!(c.sim.max_rejections, 72);
        assert!(c.baseline_cache);
    }
}
