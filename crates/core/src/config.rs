//! Top-level SchedInspector configuration.

use serde::{Deserialize, Serialize};
use simhpc::{Metric, SimConfig};

use crate::features::FeatureMode;
use crate::reward::RewardKind;

/// Everything that defines a SchedInspector training run.
///
/// Defaults are the paper's (§4.1): percentage reward, manually built
/// features, batches of 100 trajectories of 128 sequential jobs, PPO at
/// lr 1e-3, `MAX_INTERVAL` 600 s, `MAX_REJECTION_TIMES` 72.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InspectorConfig {
    /// The job-execution metric being optimized.
    pub metric: Metric,
    /// Feature-building mechanism (§3.3 / Fig. 5 ablation).
    pub features: FeatureMode,
    /// Reward function (§3.4 / Fig. 6 ablation).
    pub reward: RewardKind,
    /// Simulator settings (backfilling, MAX_INTERVAL, MAX_REJECTION_TIMES).
    pub sim: SimConfig,
    /// Trajectories per model update.
    pub batch_size: usize,
    /// Sequential jobs per training trajectory.
    pub seq_len: usize,
    /// Training epochs (model updates).
    pub epochs: usize,
    /// Base RNG seed (episodes derive sub-seeds deterministically).
    pub seed: u64,
    /// Rollout worker threads (0 = number of cores).
    pub workers: usize,
    /// Memoize base-policy runs by sequence start offset (see
    /// [`BaselineCache`](crate::BaselineCache)). Baseline results are exact
    /// either way — disabling only costs redundant simulation; the switch
    /// exists for equivalence testing and benchmarking.
    pub baseline_cache: bool,
}

impl Default for InspectorConfig {
    fn default() -> Self {
        InspectorConfig {
            metric: Metric::Bsld,
            features: FeatureMode::Manual,
            reward: RewardKind::Percentage,
            sim: SimConfig::default(),
            batch_size: 100,
            seq_len: 128,
            epochs: 50,
            seed: 0,
            workers: 0,
            baseline_cache: true,
        }
    }
}

impl InspectorConfig {
    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        InspectorConfig {
            batch_size: 16,
            seq_len: 48,
            epochs: 8,
            ..Default::default()
        }
    }

    /// Check that the configuration can drive a training run. Called by
    /// [`TrainerBuilder::build`](crate::TrainerBuilder::build); the
    /// deprecated panicking constructor funnels through the same checks.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if self.seq_len == 0 {
            return Err(ConfigError::ZeroSeqLen);
        }
        // NaN must fail too, hence not a plain `> 0.0` check.
        if self.sim.max_interval.is_nan() || self.sim.max_interval <= 0.0 {
            return Err(ConfigError::NonPositiveMaxInterval {
                value: self.sim.max_interval,
            });
        }
        if self.sim.max_rejections == 0 {
            return Err(ConfigError::ZeroMaxRejections);
        }
        Ok(())
    }
}

/// A training configuration that cannot drive a run, with enough context
/// to state which knob is wrong and why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `batch_size` was 0: an epoch would collect no trajectories.
    ZeroBatchSize,
    /// `seq_len` was 0: every episode would be empty.
    ZeroSeqLen,
    /// `sim.max_interval` must be positive or a rejected decision could
    /// never advance simulated time.
    NonPositiveMaxInterval {
        /// The offending value.
        value: f64,
    },
    /// `sim.max_rejections` was 0: no decision would ever be inspected, so
    /// the policy would receive no training signal.
    ZeroMaxRejections,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroBatchSize => {
                write!(f, "batch_size is 0: an epoch would collect no trajectories")
            }
            ConfigError::ZeroSeqLen => {
                write!(f, "seq_len is 0: every episode would be empty")
            }
            ConfigError::NonPositiveMaxInterval { value } => {
                write!(
                    f,
                    "sim.max_interval is {value}: rejections could never advance time \
                     (MAX_INTERVAL must be positive)"
                )
            }
            ConfigError::ZeroMaxRejections => {
                write!(
                    f,
                    "sim.max_rejections is 0: no decision would be inspected and the \
                     policy would receive no training signal"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = InspectorConfig::default();
        assert_eq!(c.batch_size, 100);
        assert_eq!(c.seq_len, 128);
        assert_eq!(c.metric, Metric::Bsld);
        assert_eq!(c.reward, RewardKind::Percentage);
        assert_eq!(c.features, FeatureMode::Manual);
        assert_eq!(c.sim.max_interval, 600.0);
        assert_eq!(c.sim.max_rejections, 72);
        assert!(c.baseline_cache);
    }

    #[test]
    fn default_and_quick_configs_validate() {
        assert_eq!(InspectorConfig::default().validate(), Ok(()));
        assert_eq!(InspectorConfig::quick().validate(), Ok(()));
    }

    #[test]
    fn invalid_knobs_produce_typed_errors() {
        let mut c = InspectorConfig::quick();
        c.batch_size = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroBatchSize));

        let mut c = InspectorConfig::quick();
        c.seq_len = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroSeqLen));

        let mut c = InspectorConfig::quick();
        c.sim.max_interval = -1.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::NonPositiveMaxInterval { value: -1.0 })
        );
        c.sim.max_interval = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositiveMaxInterval { .. })
        ));

        let mut c = InspectorConfig::quick();
        c.sim.max_rejections = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMaxRejections));
    }

    #[test]
    fn config_errors_display_the_offending_value() {
        let e = ConfigError::NonPositiveMaxInterval { value: -2.5 };
        assert!(e.to_string().contains("-2.5"));
        assert!(ConfigError::ZeroBatchSize
            .to_string()
            .contains("batch_size"));
    }
}
