//! Analysis of what the inspector learned (§5 / Fig. 13): record every
//! inspection decision with its input features and compare the feature
//! CDFs of rejected samples against all samples.

use rlcore::REJECT;
use serde::{Deserialize, Serialize};
use simhpc::{InspectorHook, Observation, Simulator};
use workload::Job;

use crate::agent::SchedInspector;
use crate::env::PolicyFactory;

/// One recorded inspection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionSample {
    /// Normalized feature vector observed.
    pub features: Vec<f32>,
    /// Whether the inspector rejected.
    pub rejected: bool,
}

/// Human-readable names of the manual features, in vector order (used to
/// label the Fig. 13 panels).
pub const MANUAL_FEATURE_NAMES: [&str; 8] = [
    "waiting_time",
    "job_execution_time",
    "requested_nodes",
    "rejected_times",
    "queue_delays",
    "free_nodes",
    "runnable",
    "backfillable",
];

/// Recording hook: delegates to the inspector and stores every decision.
struct RecordingHook<'a> {
    agent: &'a SchedInspector,
    buf: Vec<f32>,
    samples: &'a mut Vec<DecisionSample>,
}

impl InspectorHook for RecordingHook<'_> {
    fn inspect(&mut self, obs: &Observation) -> bool {
        self.agent.features.build(obs, &mut self.buf);
        let rejected = self.agent.policy.greedy(&self.buf) == REJECT;
        self.samples.push(DecisionSample {
            features: self.buf.clone(),
            rejected,
        });
        rejected
    }
}

/// Schedule `jobs` with the trained inspector, recording every inspection
/// decision (the paper schedules the whole trace start to finish).
pub fn collect_decisions(
    inspector: &SchedInspector,
    sim: &Simulator,
    jobs: &[Job],
    factory: &PolicyFactory,
) -> Vec<DecisionSample> {
    let mut samples = Vec::new();
    let mut policy = factory();
    let mut hook = RecordingHook {
        agent: inspector,
        buf: Vec::new(),
        samples: &mut samples,
    };
    let _ = sim.run_inspected(jobs, policy.as_mut(), &mut hook);
    samples
}

/// Empirical CDF of feature `idx` evaluated at `points` evenly spaced
/// x-values over `[0, 1]` (features are normalized). When `rejected_only`,
/// only rejected samples contribute (the red curves of Fig. 13).
pub fn feature_cdf(
    samples: &[DecisionSample],
    idx: usize,
    points: usize,
    rejected_only: bool,
) -> Vec<(f32, f32)> {
    let mut values: Vec<f32> = samples
        .iter()
        .filter(|s| !rejected_only || s.rejected)
        .map(|s| s.features[idx])
        .collect();
    values.sort_by(|a, b| a.total_cmp(b));
    let n = values.len();
    (0..points)
        .map(|i| {
            let x = i as f32 / (points - 1).max(1) as f32;
            if n == 0 {
                return (x, 0.0);
            }
            let count = values.partition_point(|&v| v <= x);
            (x, count as f32 / n as f32)
        })
        .collect()
}

/// Fraction of samples that were rejected (the paper observed ≈30% for
/// [SJF, bsld, SDSC-SP2]).
pub fn rejection_fraction(samples: &[DecisionSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|s| s.rejected).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::factory_for;
    use crate::features::{FeatureBuilder, FeatureMode, Normalizer};
    use policies::PolicyKind;
    use rlcore::BinaryPolicy;
    use simhpc::{Metric, SimConfig};

    fn sample(f: f32, rejected: bool) -> DecisionSample {
        DecisionSample {
            features: vec![f],
            rejected,
        }
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let samples: Vec<_> = (0..100)
            .map(|i| sample(i as f32 / 100.0, i % 3 == 0))
            .collect();
        let cdf = feature_cdf(&samples, 0, 21, false);
        assert_eq!(cdf.len(), 21);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejected_cdf_filters() {
        let samples = vec![sample(0.1, true), sample(0.9, false)];
        let all = feature_cdf(&samples, 0, 11, false);
        let rej = feature_cdf(&samples, 0, 11, true);
        // At x = 0.5 all-samples CDF is 0.5 but rejected-only is 1.0.
        assert!((all[5].1 - 0.5).abs() < 1e-6);
        assert!((rej[5].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_samples_yield_zero_cdf() {
        let cdf = feature_cdf(&[], 0, 5, false);
        assert!(cdf.iter().all(|&(_, y)| y == 0.0));
        assert_eq!(rejection_fraction(&[]), 0.0);
    }

    #[test]
    fn collect_records_every_inspection() {
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(8, 1000.0),
        };
        let inspector = SchedInspector::new(BinaryPolicy::new(fb.dim(), 1), fb);
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::new(i + 1, i as f64 * 50.0, 100.0, 150.0, 1 + (i % 3) as u32))
            .collect();
        let sim = Simulator::new(8, SimConfig::default());
        let factory = factory_for(PolicyKind::Sjf);
        let samples = collect_decisions(&inspector, &sim, &jobs, &factory);
        assert!(!samples.is_empty());
        assert!(samples.iter().all(|s| s.features.len() == 8));
        let frac = rejection_fraction(&samples);
        assert!((0.0..=1.0).contains(&frac));
    }
}
