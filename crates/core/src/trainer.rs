//! The PPO training loop (§3, §4.1): sample job sequences, roll out
//! episodes in parallel, compute percentage rewards against the base
//! policy, and update the actor–critic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use obs::Telemetry;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rlcore::{
    default_workers, parallel_map, Batch, BinaryPolicy, PpoConfig, PpoTrainer, Trajectory,
    UpdateStats,
};
use serde::{Deserialize, Serialize};
use simhpc::Simulator;
use workload::JobTrace;

use crate::agent::SchedInspector;
use crate::baseline::BaselineCache;
use crate::config::{ConfigError, InspectorConfig};
use crate::env::{run_episode, EpisodeSpec, PolicyFactory};
use crate::features::{FeatureBuilder, Normalizer};

/// The deterministic sampling decisions of one training epoch: which
/// start offsets the batch draws its job sequences from, and the base
/// seed each episode derives its stochastic-policy stream from.
///
/// A plan is a pure function of `(config.seed, epoch)` given the trainer
/// RNG's position, and every episode is in turn a pure function of
/// `(start offset, episode seed, policy snapshot)` — which is why a
/// distributed coordinator can ship plan fragments to rollout workers,
/// reassign them after a worker dies, or even execute them twice, without
/// changing a single bit of the training result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochPlan {
    /// The epoch this plan samples for.
    pub epoch: usize,
    /// Base of the per-episode seeds (episode `i` uses `base + i`).
    pub episode_seed_base: u64,
    /// Start offset of each episode's job sequence, in episode order.
    pub starts: Vec<usize>,
}

/// Everything the PPO update and epoch diagnostics need from one
/// rolled-out episode — deliberately free of simulator internals so it
/// can cross a process boundary (the distributed trajectory wire format
/// carries exactly these fields).
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeSummary {
    /// Position of this episode in the epoch batch.
    pub index: usize,
    /// The trajectory collected under the inspected policy.
    pub trajectory: Trajectory,
    /// Base-policy metric value for the episode's sequence.
    pub base_metric: f64,
    /// Inspected-run metric value.
    pub inspected_metric: f64,
    /// Scheduling points the inspector was consulted on.
    pub inspections: u64,
    /// Rejections the inspector issued.
    pub rejections: u64,
}

/// Wall-time and cache context the epoch-completion step folds into the
/// [`EpochRecord`] and the telemetry stream. Produced by whoever ran the
/// rollouts — the local parallel path or a distributed coordinator.
#[derive(Debug, Clone, Copy, Default)]
pub struct RolloutReport {
    /// Seconds spent collecting the batch.
    pub rollout_secs: f64,
    /// Seconds spent inside baseline-policy simulations (cache misses).
    pub baseline_secs: f64,
    /// Baseline-cache `(hits, base_runs)` totals when the epoch started.
    pub cache_before: (u64, u64),
}

/// Wall-time breakdown of one epoch. Carried by [`EpochRecord`] for
/// diagnostics but excluded from its `PartialEq`: two runs with identical
/// training results compare equal regardless of how fast they ran.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EpochTiming {
    /// Seconds spent rolling out the batch (includes baseline runs).
    pub rollout_secs: f64,
    /// Seconds spent inside baseline-policy simulations (cache misses).
    /// Summed across rollout workers, so it can exceed `rollout_secs`.
    pub baseline_secs: f64,
    /// Seconds spent in the PPO update.
    pub update_secs: f64,
}

/// Per-epoch training diagnostics — the data behind every training-curve
/// figure in the paper (Figs. 4–7, 9, 11, 12).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (one model update each).
    pub epoch: usize,
    /// Mean terminal reward of the batch.
    pub mean_reward: f32,
    /// Mean absolute metric improvement `m_orig − m_inspect` (the y-axis of
    /// Figs. 4, 5, 7).
    pub improvement: f64,
    /// Mean relative improvement `(m_orig − m_inspect) / m_orig` (the
    /// y-axis of Figs. 9, 11, 12).
    pub improvement_pct: f64,
    /// Mean base-policy metric value over the batch.
    pub base_metric: f64,
    /// Mean inspected metric value over the batch.
    pub inspected_metric: f64,
    /// Rejections / inspections over the batch (Fig. 7's orange curves).
    pub rejection_ratio: f64,
    /// Scheduling points inspected over the batch.
    pub inspections: u64,
    /// Rejections issued over the batch.
    pub rejections: u64,
    /// Wall-time breakdown (excluded from equality).
    pub timing: EpochTiming,
    /// PPO update diagnostics.
    pub stats: UpdateStats,
}

/// Equality over training results only — `timing` is machine- and
/// load-dependent, so it must not break the determinism guarantees
/// (fixed seed ⇒ identical [`TrainingHistory`]).
impl PartialEq for EpochRecord {
    fn eq(&self, other: &Self) -> bool {
        self.epoch == other.epoch
            && self.mean_reward == other.mean_reward
            && self.improvement == other.improvement
            && self.improvement_pct == other.improvement_pct
            && self.base_metric == other.base_metric
            && self.inspected_metric == other.inspected_metric
            && self.rejection_ratio == other.rejection_ratio
            && self.inspections == other.inspections
            && self.rejections == other.rejections
            && self.stats == other.stats
    }
}

/// The full training curve.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// One record per epoch.
    pub records: Vec<EpochRecord>,
}

impl TrainingHistory {
    /// Mean absolute improvement over the last `n` epochs (convergence
    /// value reported by the paper's figures).
    pub fn converged_improvement(&self, n: usize) -> f64 {
        let tail = &self.records[self.records.len().saturating_sub(n)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|r| r.improvement).sum::<f64>() / tail.len() as f64
    }

    /// Mean rejection ratio over the last `n` epochs.
    pub fn converged_rejection_ratio(&self, n: usize) -> f64 {
        let tail = &self.records[self.records.len().saturating_sub(n)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|r| r.rejection_ratio).sum::<f64>() / tail.len() as f64
    }
}

/// Why a [`TrainerBuilder`] could not produce a [`Trainer`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The configuration failed [`InspectorConfig::validate`].
    Config(ConfigError),
    /// The trace has no jobs — nothing to sample sequences from.
    EmptyTrace {
        /// Name of the offending trace.
        trace: String,
    },
    /// A [`workload::TraceSource`] failed to load
    /// (see [`Trainer::builder_source`]).
    Source {
        /// The source's [`workload::TraceSource::id`].
        id: String,
        /// The rendered [`workload::SourceError`].
        message: String,
    },
    /// A checkpoint could not be restored into this trainer
    /// (see [`Trainer::restore`]).
    Checkpoint(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Config(e) => write!(f, "invalid training config: {e}"),
            TrainError::EmptyTrace { trace } => {
                write!(f, "trace '{trace}' has no jobs to train on")
            }
            TrainError::Source { id, message } => {
                write!(f, "cannot load trace source {id}: {message}")
            }
            TrainError::Checkpoint(msg) => write!(f, "cannot restore checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Config(e) => Some(e),
            TrainError::EmptyTrace { .. }
            | TrainError::Source { .. }
            | TrainError::Checkpoint(_) => None,
        }
    }
}

impl From<ConfigError> for TrainError {
    fn from(e: ConfigError) -> Self {
        TrainError::Config(e)
    }
}

/// Step-by-step construction of a [`Trainer`], created by
/// [`Trainer::builder`]. Validates the configuration and trace in
/// [`build`](TrainerBuilder::build) instead of panicking.
///
/// ```ignore
/// let trainer = Trainer::builder(trace)
///     .policy(PolicyKind::Sjf)
///     .config(InspectorConfig::quick())
///     .telemetry(telemetry)
///     .build()?;
/// ```
pub struct TrainerBuilder {
    trace: JobTrace,
    factory: Option<PolicyFactory>,
    config: InspectorConfig,
    telemetry: Telemetry,
}

impl TrainerBuilder {
    /// Use a stateless Table 3 base policy.
    pub fn policy(mut self, kind: policies::PolicyKind) -> Self {
        self.factory = Some(crate::env::factory_for(kind));
        self
    }

    /// Use the Slurm multifactor base policy, shares derived from the
    /// trace (§4.5).
    pub fn slurm(mut self) -> Self {
        self.factory = Some(crate::env::slurm_factory(&self.trace));
        self
    }

    /// Use a custom base-policy factory (overrides
    /// [`policy`](TrainerBuilder::policy)/[`slurm`](TrainerBuilder::slurm)).
    pub fn factory(mut self, factory: PolicyFactory) -> Self {
        self.factory = Some(factory);
        self
    }

    /// Set the training configuration (default:
    /// [`InspectorConfig::default`]).
    pub fn config(mut self, config: InspectorConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach a telemetry handle; training emits spans, counters, and
    /// gauges through it (default: disabled, zero overhead).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Validate and build the [`Trainer`]. Without an explicit base policy
    /// the paper's FCFS baseline is used.
    pub fn build(self) -> Result<Trainer, TrainError> {
        self.config.validate()?;
        if self.trace.is_empty() {
            return Err(TrainError::EmptyTrace {
                trace: self.trace.name.clone(),
            });
        }
        let factory = self
            .factory
            .unwrap_or_else(|| crate::env::factory_for(policies::PolicyKind::Fcfs));
        Ok(Trainer::assemble(
            self.trace,
            factory,
            self.config,
            self.telemetry,
        ))
    }
}

/// Trains a [`SchedInspector`] for one (base policy, trace, metric) combo.
pub struct Trainer {
    config: InspectorConfig,
    ppo: PpoTrainer,
    features: FeatureBuilder,
    factory: PolicyFactory,
    trace: JobTrace,
    sim: Simulator,
    rng: StdRng,
    baseline: BaselineCache,
    telemetry: Telemetry,
}

impl Trainer {
    /// Start building a trainer over `trace` (typically the train split).
    pub fn builder(trace: JobTrace) -> TrainerBuilder {
        TrainerBuilder {
            trace,
            factory: None,
            config: InspectorConfig::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Start building a trainer over the trace produced by any
    /// [`workload::TraceSource`] (SWF archive, synthetic profile,
    /// scenario-compiled). The source is loaded eagerly so ingestion
    /// failures surface here, not at `build()`.
    pub fn builder_source(
        source: &dyn workload::TraceSource,
    ) -> Result<TrainerBuilder, TrainError> {
        let trace = source.load().map_err(|e| TrainError::Source {
            id: source.id(),
            message: e.to_string(),
        })?;
        Ok(Trainer::builder(trace))
    }

    /// Create a trainer over `trace` improving the base policy produced by
    /// `factory`.
    ///
    /// # Panics
    /// Panics on an invalid configuration or empty trace. Use
    /// [`Trainer::builder`] for the fallible path.
    #[deprecated(since = "0.2.0", note = "use Trainer::builder(trace)…build()")]
    pub fn new(trace: JobTrace, factory: PolicyFactory, config: InspectorConfig) -> Self {
        match Trainer::builder(trace)
            .factory(factory)
            .config(config)
            .build()
        {
            Ok(t) => t,
            Err(e) => panic!("Trainer::new: {e}"),
        }
    }

    fn assemble(
        trace: JobTrace,
        factory: PolicyFactory,
        config: InspectorConfig,
        telemetry: Telemetry,
    ) -> Self {
        let stats = trace.stats();
        let norm = Normalizer {
            max_estimate: stats.max_estimate.max(1.0),
            total_procs: trace.procs,
            max_wait: 86_400.0,
            max_interval: config.sim.max_interval,
            max_rejections: config.sim.max_rejections,
        };
        let features = FeatureBuilder {
            mode: config.features,
            metric: config.metric,
            norm,
        };
        let ppo = PpoTrainer::new(features.dim(), PpoConfig::default(), config.seed);
        let sim = Simulator::new(trace.procs, config.sim);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x7261_696E);
        let baseline = if config.baseline_cache {
            BaselineCache::new()
        } else {
            BaselineCache::disabled()
        };
        Trainer {
            config,
            ppo,
            features,
            factory,
            trace,
            sim,
            rng,
            baseline,
            telemetry,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &InspectorConfig {
        &self.config
    }

    /// The feature builder in use.
    pub fn features(&self) -> &FeatureBuilder {
        &self.features
    }

    /// The baseline-run cache (hit/run counters for diagnostics).
    pub fn baseline_cache(&self) -> &BaselineCache {
        &self.baseline
    }

    /// Draw the sampling plan for `epoch`, advancing the trainer RNG by
    /// exactly the draw pattern [`Trainer::restore`] replays (one bounded
    /// draw per episode, none when the trace admits a single offset).
    pub fn epoch_plan(&mut self, epoch: usize) -> EpochPlan {
        let n = self.config.batch_size;
        let max_start = self.trace.len().saturating_sub(self.config.seq_len);
        let starts: Vec<usize> = (0..n)
            .map(|_| {
                if max_start == 0 {
                    0
                } else {
                    self.rng.random_range(0..=max_start)
                }
            })
            .collect();
        EpochPlan {
            epoch,
            episode_seed_base: self
                .config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(epoch as u64),
            starts,
        }
    }

    /// Roll out the assigned `(episode index, start offset)` pairs under
    /// `policy` and summarize each episode. Results come back in
    /// assignment order; each is a pure function of its assignment, the
    /// seed base, and the policy, so any subset of a plan can run
    /// anywhere (another thread, another process, twice) and still
    /// produce identical bytes. Returns the summaries plus nanoseconds
    /// spent in baseline simulations (cache misses).
    pub fn rollout_assigned(
        &self,
        episode_seed_base: u64,
        assignments: &[(usize, usize)],
        policy: &BinaryPolicy,
    ) -> (Vec<EpisodeSummary>, u64) {
        let workers = if self.config.workers == 0 {
            default_workers(assignments.len())
        } else {
            self.config.workers
        };
        let seq_len = self.config.seq_len;
        let (sim, features, factory, trace, config, baseline, telemetry) = (
            &self.sim,
            &self.features,
            &self.factory,
            &self.trace,
            &self.config,
            &self.baseline,
            &self.telemetry,
        );
        let baseline_nanos = AtomicU64::new(0);
        let summaries = parallel_map(assignments.len(), workers, |k| {
            let (index, start) = assignments[k];
            let jobs = trace.sequence(start, seq_len);
            let base = baseline.get_or_run(start, || {
                let t0 = Instant::now();
                let mut p = factory();
                let r = sim.run(&jobs, p.as_mut());
                baseline_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                r
            });
            let e = run_episode(&EpisodeSpec {
                seed: episode_seed_base.wrapping_add(index as u64),
                base: Some(base),
                reward: config.reward,
                metric: config.metric,
                telemetry: telemetry.clone(),
                ..EpisodeSpec::new(sim, &jobs, factory, policy, features)
            });
            let m = config.metric;
            EpisodeSummary {
                index,
                base_metric: e.base.metric(m),
                inspected_metric: e.inspected.metric(m),
                inspections: e.inspected.inspections,
                rejections: e.inspected.rejections,
                trajectory: e.trajectory,
            }
        });
        (summaries, baseline_nanos.load(Ordering::Relaxed))
    }

    /// Run one epoch: collect `batch_size` trajectories in parallel and
    /// update the networks. Equivalent to [`Trainer::epoch_plan`] → local
    /// [`Trainer::rollout_assigned`] → [`Trainer::complete_epoch`]; a
    /// distributed coordinator runs the same three phases with the middle
    /// one sharded across workers, which is why its results are
    /// byte-identical to this in-process path.
    pub fn train_epoch(&mut self, epoch: usize) -> EpochRecord {
        let epoch_span = obs::span!(self.telemetry, "epoch");
        let plan = self.epoch_plan(epoch);
        let assignments: Vec<(usize, usize)> = plan.starts.iter().copied().enumerate().collect();
        let policy = self.ppo.policy.clone();
        let cache_before = (self.baseline.hits(), self.baseline.base_runs());
        let rollout_span = obs::span!(self.telemetry, "rollout");
        let rollout_start = Instant::now();
        let (summaries, baseline_nanos) =
            self.rollout_assigned(plan.episode_seed_base, &assignments, &policy);
        let rollout_secs = rollout_start.elapsed().as_secs_f64();
        drop(rollout_span);
        self.finish_epoch(
            epoch,
            summaries,
            RolloutReport {
                rollout_secs,
                baseline_secs: baseline_nanos as f64 * 1e-9,
                cache_before,
            },
            epoch_span,
            None,
        )
    }

    /// Fold a fully collected batch into the training state: run the
    /// central PPO update, emit the epoch's telemetry, and return its
    /// record. `summaries` must cover the whole plan in episode order —
    /// exactly what a distributed coordinator has after its shard ledger
    /// closes.
    pub fn complete_epoch(
        &mut self,
        epoch: usize,
        summaries: Vec<EpisodeSummary>,
        report: RolloutReport,
        epoch_span: obs::Span,
    ) -> EpochRecord {
        self.finish_epoch(epoch, summaries, report, epoch_span, None)
    }

    /// [`Trainer::complete_epoch`] for the decentralized merge path: the
    /// per-shard PPO updates already happened on the workers, so instead
    /// of running a central update this installs the `merged` replica
    /// average and records the pre-averaged `stats`.
    pub fn complete_epoch_premerged(
        &mut self,
        epoch: usize,
        summaries: Vec<EpisodeSummary>,
        merged: PpoTrainer,
        stats: UpdateStats,
        report: RolloutReport,
        epoch_span: obs::Span,
    ) -> Result<EpochRecord, TrainError> {
        if merged.policy.input_dim() != self.features.dim() {
            return Err(TrainError::Checkpoint(format!(
                "merged policy takes {} features, trainer builds {}",
                merged.policy.input_dim(),
                self.features.dim()
            )));
        }
        Ok(self.finish_epoch(epoch, summaries, report, epoch_span, Some((merged, stats))))
    }

    fn finish_epoch(
        &mut self,
        epoch: usize,
        summaries: Vec<EpisodeSummary>,
        report: RolloutReport,
        epoch_span: obs::Span,
        premerged: Option<(PpoTrainer, UpdateStats)>,
    ) -> EpochRecord {
        let n = summaries.len();
        debug_assert!(summaries.iter().enumerate().all(|(i, s)| s.index == i));
        let base_metric = summaries.iter().map(|s| s.base_metric).sum::<f64>() / n.max(1) as f64;
        let inspected_metric =
            summaries.iter().map(|s| s.inspected_metric).sum::<f64>() / n.max(1) as f64;
        let improvement_pct = summaries
            .iter()
            .map(|s| {
                if s.base_metric.abs() < 1e-12 {
                    0.0
                } else {
                    (s.base_metric - s.inspected_metric) / s.base_metric
                }
            })
            .sum::<f64>()
            / n.max(1) as f64;
        let inspections: u64 = summaries.iter().map(|s| s.inspections).sum();
        let rejections: u64 = summaries.iter().map(|s| s.rejections).sum();

        let batch = Batch {
            trajectories: summaries.into_iter().map(|s| s.trajectory).collect(),
        };
        let mean_reward = batch.mean_reward();
        let update_span = obs::span!(self.telemetry, "ppo_update");
        let update_start = Instant::now();
        let stats = match premerged {
            None => self.ppo.update_traced(&batch, &self.telemetry),
            Some((merged, stats)) => {
                self.ppo = merged;
                stats
            }
        };
        let update_secs = update_start.elapsed().as_secs_f64();
        drop(update_span);

        let rejection_ratio = if inspections == 0 {
            0.0
        } else {
            rejections as f64 / inspections as f64
        };
        if self.telemetry.is_enabled() {
            let (hits0, runs0) = report.cache_before;
            self.telemetry.count("train.episodes", n as u64);
            self.telemetry.count("train.inspections", inspections);
            self.telemetry.count("train.rejections", rejections);
            let (hits, runs) = (self.baseline.hits(), self.baseline.base_runs());
            self.telemetry.count("baseline.hits", hits - hits0);
            self.telemetry.count("baseline.runs", runs - runs0);
            let lookups = self.baseline.lookups();
            if lookups > 0 {
                self.telemetry
                    .gauge("baseline.hit_rate", hits as f64 / lookups as f64);
            }
            self.telemetry
                .gauge("epoch.mean_reward", mean_reward as f64);
            self.telemetry
                .gauge("epoch.improvement_pct", improvement_pct);
            self.telemetry
                .gauge("epoch.rejection_ratio", rejection_ratio);
            if report.rollout_secs > 0.0 {
                self.telemetry.gauge(
                    "rollout.points_per_sec",
                    inspections as f64 / report.rollout_secs,
                );
            }
            let epoch_secs = epoch_span.elapsed();
            if epoch_secs > 0.0 {
                self.telemetry
                    .heartbeat("train", epoch as u64, n as f64 / epoch_secs);
            }
        }

        EpochRecord {
            epoch,
            mean_reward,
            improvement: base_metric - inspected_metric,
            improvement_pct,
            base_metric,
            inspected_metric,
            rejection_ratio,
            inspections,
            rejections,
            timing: EpochTiming {
                rollout_secs: report.rollout_secs,
                baseline_secs: report.baseline_secs,
                update_secs,
            },
            stats,
        }
    }

    /// Train for `config.epochs` epochs, returning the training curve.
    pub fn train(&mut self) -> TrainingHistory {
        let mut history = TrainingHistory::default();
        for epoch in 0..self.config.epochs {
            history.records.push(self.train_epoch(epoch));
        }
        history
    }

    /// Snapshot the complete evolving trainer state after `epochs_done`
    /// fully completed epochs, as exact-roundtrip text (see
    /// [`Checkpoint`](crate::checkpoint::Checkpoint)).
    pub fn checkpoint_text(&self, epochs_done: usize) -> String {
        crate::checkpoint::Checkpoint::from_ppo(&self.ppo, epochs_done, self.config.seed).to_text()
    }

    /// Restore a checkpoint produced by
    /// [`checkpoint_text`](Trainer::checkpoint_text) on an equivalently
    /// built trainer (same trace, config, and base policy). Returns the
    /// epoch index to continue from. After this, training epochs
    /// `epochs_done..` produces results bit-identical to a run that was
    /// never interrupted.
    pub fn restore(&mut self, text: &str) -> Result<usize, TrainError> {
        let ck = crate::checkpoint::Checkpoint::from_text(text).map_err(TrainError::Checkpoint)?;
        let epochs_done = ck.epochs_done;
        self.install_checkpoint(ck)?;
        // The trainer RNG has no serializable state; replay the exact
        // draw pattern of the completed epochs instead. Each epoch draws
        // `batch_size` start offsets, unless the trace admits only one
        // (max_start == 0), in which case `epoch_plan` draws nothing.
        self.rng = StdRng::seed_from_u64(self.config.seed ^ 0x7261_696E);
        let max_start = self.trace.len().saturating_sub(self.config.seq_len);
        if max_start > 0 {
            for _ in 0..epochs_done {
                for _ in 0..self.config.batch_size {
                    let _ = self.rng.random_range(0..=max_start);
                }
            }
        }
        Ok(epochs_done)
    }

    /// Swap a parsed checkpoint's networks and optimizer state into this
    /// trainer *without* touching the start-offset RNG. [`Trainer::restore`]
    /// is this plus the RNG replay; a distributed worker installing the
    /// coordinator's epoch snapshot uses this alone, because the
    /// coordinator owns the plan.
    pub fn install_checkpoint(
        &mut self,
        ck: crate::checkpoint::Checkpoint,
    ) -> Result<(), TrainError> {
        if ck.seed != self.config.seed {
            return Err(TrainError::Checkpoint(format!(
                "checkpoint was trained with seed {}, trainer has seed {}",
                ck.seed, self.config.seed
            )));
        }
        if ck.policy.input_dim() != self.features.dim() {
            return Err(TrainError::Checkpoint(format!(
                "checkpoint policy takes {} features, trainer builds {}",
                ck.policy.input_dim(),
                self.features.dim()
            )));
        }
        self.ppo = PpoTrainer::from_parts(
            ck.policy,
            ck.critic,
            PpoConfig::default(),
            ck.pi_opt,
            ck.vf_opt,
        )
        .map_err(TrainError::Checkpoint)?;
        Ok(())
    }

    /// The live PPO state (networks + optimizers).
    pub fn ppo(&self) -> &PpoTrainer {
        &self.ppo
    }

    /// Mutable access to the live PPO state — the hook a distributed
    /// worker uses to run its local (decentralized-merge) update.
    pub fn ppo_mut(&mut self) -> &mut PpoTrainer {
        &mut self.ppo
    }

    /// The training trace this trainer samples from.
    pub fn trace(&self) -> &JobTrace {
        &self.trace
    }

    /// Snapshot the current policy as a deployable inspector.
    pub fn inspector(&self) -> SchedInspector {
        SchedInspector::new(self.ppo.policy.clone(), self.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::factory_for;
    use policies::PolicyKind;
    use workload::Job;

    fn tiny_trace() -> JobTrace {
        // A congested 8-proc machine with a mix of long-wide and short jobs:
        // enough structure for the inspector to find rejection opportunities.
        let mut jobs = Vec::new();
        for i in 0..400u64 {
            let (rt, procs) = match i % 5 {
                0 => (2400.0, 6),
                1 => (300.0, 2),
                2 => (600.0, 1),
                3 => (3000.0, 4),
                _ => (120.0, 1),
            };
            jobs.push(Job::new(i + 1, i as f64 * 150.0, rt, rt * 1.5, procs));
        }
        JobTrace::new("tiny", 8, jobs).unwrap()
    }

    #[test]
    fn one_epoch_produces_finite_record() {
        let config = InspectorConfig {
            batch_size: 6,
            seq_len: 24,
            epochs: 1,
            seed: 3,
            workers: 2,
            ..Default::default()
        };
        let mut t = Trainer::builder(tiny_trace())
            .policy(PolicyKind::Sjf)
            .config(config)
            .build()
            .unwrap();
        let rec = t.train_epoch(0);
        assert!(rec.base_metric.is_finite());
        assert!(rec.inspected_metric.is_finite());
        assert!(rec.mean_reward.is_finite());
        assert!((0.0..=1.0).contains(&rec.rejection_ratio));
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed_and_workers() {
        let config = InspectorConfig {
            batch_size: 4,
            seq_len: 16,
            epochs: 2,
            seed: 9,
            workers: 2,
            ..Default::default()
        };
        let run = || {
            let mut t = Trainer::builder(tiny_trace())
                .policy(PolicyKind::Sjf)
                .config(config)
                .build()
                .unwrap();
            t.train()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mk = |workers| InspectorConfig {
            batch_size: 4,
            seq_len: 16,
            epochs: 1,
            seed: 5,
            workers,
            ..Default::default()
        };
        let run = |workers| {
            let mut t = Trainer::builder(tiny_trace())
                .policy(PolicyKind::Sjf)
                .config(mk(workers))
                .build()
                .unwrap();
            t.train_epoch(0)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn cached_and_uncached_training_are_bit_identical() {
        let mk = |baseline_cache| InspectorConfig {
            batch_size: 6,
            seq_len: 16,
            epochs: 3,
            seed: 11,
            workers: 2,
            baseline_cache,
            ..Default::default()
        };
        let run = |baseline_cache| {
            let mut t = Trainer::builder(tiny_trace())
                .policy(PolicyKind::Sjf)
                .config(mk(baseline_cache))
                .build()
                .unwrap();
            (t.train(), t.baseline_cache().base_runs())
        };
        let (cached, cached_runs) = run(true);
        let (uncached, uncached_runs) = run(false);
        assert_eq!(cached, uncached);
        // The bypass path really re-simulated every episode's baseline.
        assert_eq!(uncached_runs, 6 * 3);
        assert!(cached_runs <= uncached_runs);
    }

    #[test]
    fn base_runs_match_distinct_start_offsets() {
        // seq_len == trace length - small max_start forces heavy offset reuse.
        let config = InspectorConfig {
            batch_size: 12,
            seq_len: 395,
            epochs: 2,
            seed: 2,
            workers: 3,
            ..Default::default()
        };
        let mut t = Trainer::builder(tiny_trace())
            .policy(PolicyKind::Sjf)
            .config(config)
            .build()
            .unwrap();
        t.train();
        let cache = t.baseline_cache();
        // max_start = 400 - 395 = 5, so at most 6 distinct offsets exist.
        assert!(cache.base_runs() <= 6, "base runs: {}", cache.base_runs());
        assert_eq!(cache.base_runs() as usize, cache.len());
        assert_eq!(cache.lookups(), 12 * 2);
        assert_eq!(cache.hits(), cache.lookups() - cache.base_runs());
    }

    #[test]
    fn resume_from_checkpoint_is_bit_identical() {
        let config = InspectorConfig {
            batch_size: 4,
            seq_len: 16,
            epochs: 5,
            seed: 17,
            workers: 2,
            ..Default::default()
        };
        let build = || {
            Trainer::builder(tiny_trace())
                .policy(PolicyKind::Sjf)
                .config(config)
                .build()
                .unwrap()
        };
        // Uninterrupted reference run, checkpointing each epoch.
        let mut reference = build();
        let mut ref_records = Vec::new();
        for epoch in 0..config.epochs {
            ref_records.push(reference.train_epoch(epoch));
        }
        let final_ck = reference.checkpoint_text(config.epochs);

        // Kill after 3 epochs, resume in a fresh trainer from the
        // checkpoint text alone.
        for kill_at in [1usize, 3] {
            let mut first = build();
            for epoch in 0..kill_at {
                first.train_epoch(epoch);
            }
            let ck = first.checkpoint_text(kill_at);
            drop(first);

            let mut resumed = build();
            let next = resumed.restore(&ck).unwrap();
            assert_eq!(next, kill_at);
            for (epoch, want) in ref_records.iter().enumerate().skip(kill_at) {
                let got = resumed.train_epoch(epoch);
                assert_eq!(
                    &got, want,
                    "epoch {epoch} diverged after resume at {kill_at}"
                );
            }
            assert_eq!(
                resumed.checkpoint_text(config.epochs),
                final_ck,
                "final checkpoint must be byte-identical (resume at {kill_at})"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_checkpoints() {
        let config = InspectorConfig {
            batch_size: 4,
            seq_len: 16,
            epochs: 1,
            seed: 23,
            workers: 1,
            ..Default::default()
        };
        let mut t = Trainer::builder(tiny_trace())
            .policy(PolicyKind::Sjf)
            .config(config)
            .build()
            .unwrap();
        assert!(matches!(
            t.restore("not a checkpoint"),
            Err(TrainError::Checkpoint(_))
        ));
        // Seed mismatch.
        let other = InspectorConfig { seed: 24, ..config };
        let wrong_seed = Trainer::builder(tiny_trace())
            .policy(PolicyKind::Sjf)
            .config(other)
            .build()
            .unwrap()
            .checkpoint_text(0);
        let err = t.restore(&wrong_seed).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn inspector_snapshot_matches_feature_dim() {
        let config = InspectorConfig::quick();
        let t = Trainer::builder(tiny_trace())
            .policy(PolicyKind::Sjf)
            .config(config)
            .build()
            .unwrap();
        let insp = t.inspector();
        assert_eq!(insp.policy.input_dim(), t.features().dim());
    }

    #[test]
    fn builder_rejects_invalid_config_and_empty_trace() {
        let bad = InspectorConfig {
            batch_size: 0,
            ..InspectorConfig::quick()
        };
        let err = Trainer::builder(tiny_trace())
            .policy(PolicyKind::Sjf)
            .config(bad)
            .build()
            .err()
            .unwrap();
        assert_eq!(err, TrainError::Config(ConfigError::ZeroBatchSize));
        assert!(err.to_string().contains("batch_size"));

        let empty = JobTrace::new("empty", 8, Vec::new()).unwrap();
        let err = Trainer::builder(empty)
            .policy(PolicyKind::Sjf)
            .config(InspectorConfig::quick())
            .build()
            .err()
            .unwrap();
        assert!(matches!(err, TrainError::EmptyTrace { .. }));
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_matches_builder() {
        let config = InspectorConfig {
            batch_size: 4,
            seq_len: 16,
            epochs: 1,
            seed: 7,
            workers: 1,
            ..Default::default()
        };
        let mut old = Trainer::new(tiny_trace(), factory_for(PolicyKind::Sjf), config);
        let mut new = Trainer::builder(tiny_trace())
            .policy(PolicyKind::Sjf)
            .config(config)
            .build()
            .unwrap();
        assert_eq!(old.train_epoch(0), new.train_epoch(0));
    }

    /// One training epoch must emit the documented event set, with spans
    /// paired, timestamps monotonic (single worker), and counter totals
    /// reconciling exactly with the returned [`EpochRecord`].
    #[test]
    fn one_epoch_emits_a_reconcilable_event_stream() {
        let config = InspectorConfig {
            batch_size: 5,
            seq_len: 24,
            epochs: 1,
            seed: 13,
            workers: 1, // multi-worker recording may interleave timestamps
            ..Default::default()
        };
        let (telemetry, sink) = obs::Telemetry::in_memory();
        let mut t = Trainer::builder(tiny_trace())
            .policy(PolicyKind::Sjf)
            .config(config)
            .telemetry(telemetry)
            .build()
            .unwrap();
        let rec = t.train_epoch(0);

        let pairs = sink.check_span_pairing().expect("spans must pair");
        assert_eq!(pairs.get("epoch"), Some(&1));
        assert_eq!(pairs.get("rollout"), Some(&1));
        assert_eq!(pairs.get("ppo_update"), Some(&1));
        sink.check_monotonic_timestamps().expect("monotonic");

        assert_eq!(sink.counter_total("train.episodes"), 5);
        assert_eq!(sink.counter_total("train.inspections"), rec.inspections);
        assert_eq!(sink.counter_total("train.rejections"), rec.rejections);
        let decisions = sink.counter_total("sim.accept") + sink.counter_total("sim.reject");
        assert_eq!(decisions, rec.inspections);
        assert_eq!(sink.counter_total("sim.reject"), rec.rejections);
        assert_eq!(
            sink.counter_total("baseline.hits") + sink.counter_total("baseline.runs"),
            t.baseline_cache().lookups()
        );

        assert_eq!(
            sink.gauge_values("epoch.mean_reward"),
            vec![rec.mean_reward as f64]
        );
        assert_eq!(
            sink.gauge_values("epoch.rejection_ratio"),
            vec![rec.rejection_ratio]
        );
        // Exactly one liveness heartbeat per epoch, with a plausible rate.
        let heartbeats: Vec<_> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                obs::Event::Heartbeat {
                    name, epoch, eps, ..
                } => Some((name, epoch, eps)),
                _ => None,
            })
            .collect();
        assert_eq!(heartbeats.len(), 1);
        assert_eq!(heartbeats[0].0, "train");
        assert_eq!(heartbeats[0].1, 0);
        assert!(heartbeats[0].2 > 0.0);

        // The epoch span covers the whole call, so its duration bounds the
        // per-stage wall times recorded in the EpochRecord.
        let epoch_dur = sink.span_durations("epoch")[0];
        assert!(rec.timing.rollout_secs <= epoch_dur);
        assert!(rec.timing.update_secs <= epoch_dur);
        assert!(rec.timing.rollout_secs >= 0.0 && rec.timing.baseline_secs >= 0.0);
    }

    #[test]
    fn telemetry_does_not_change_training_results() {
        let config = InspectorConfig {
            batch_size: 4,
            seq_len: 16,
            epochs: 2,
            seed: 21,
            workers: 2,
            ..Default::default()
        };
        let run = |telemetry| {
            let mut t = Trainer::builder(tiny_trace())
                .policy(PolicyKind::Sjf)
                .config(config)
                .telemetry(telemetry)
                .build()
                .unwrap();
            t.train()
        };
        let silent = run(Telemetry::disabled());
        let (telemetry, _sink) = obs::Telemetry::in_memory();
        let traced = run(telemetry);
        assert_eq!(silent, traced);
    }
}
