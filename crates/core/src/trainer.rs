//! The PPO training loop (§3, §4.1): sample job sequences, roll out
//! episodes in parallel, compute percentage rewards against the base
//! policy, and update the actor–critic.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rlcore::{default_workers, parallel_map, Batch, PpoConfig, PpoTrainer, UpdateStats};
use serde::{Deserialize, Serialize};
use simhpc::Simulator;
use workload::JobTrace;

use crate::agent::SchedInspector;
use crate::baseline::BaselineCache;
use crate::config::InspectorConfig;
use crate::env::{run_episode_with_base, PolicyFactory};
use crate::features::{FeatureBuilder, Normalizer};

/// Per-epoch training diagnostics — the data behind every training-curve
/// figure in the paper (Figs. 4–7, 9, 11, 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (one model update each).
    pub epoch: usize,
    /// Mean terminal reward of the batch.
    pub mean_reward: f32,
    /// Mean absolute metric improvement `m_orig − m_inspect` (the y-axis of
    /// Figs. 4, 5, 7).
    pub improvement: f64,
    /// Mean relative improvement `(m_orig − m_inspect) / m_orig` (the
    /// y-axis of Figs. 9, 11, 12).
    pub improvement_pct: f64,
    /// Mean base-policy metric value over the batch.
    pub base_metric: f64,
    /// Mean inspected metric value over the batch.
    pub inspected_metric: f64,
    /// Rejections / inspections over the batch (Fig. 7's orange curves).
    pub rejection_ratio: f64,
    /// PPO update diagnostics.
    pub stats: UpdateStats,
}

/// The full training curve.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// One record per epoch.
    pub records: Vec<EpochRecord>,
}

impl TrainingHistory {
    /// Mean absolute improvement over the last `n` epochs (convergence
    /// value reported by the paper's figures).
    pub fn converged_improvement(&self, n: usize) -> f64 {
        let tail = &self.records[self.records.len().saturating_sub(n)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|r| r.improvement).sum::<f64>() / tail.len() as f64
    }

    /// Mean rejection ratio over the last `n` epochs.
    pub fn converged_rejection_ratio(&self, n: usize) -> f64 {
        let tail = &self.records[self.records.len().saturating_sub(n)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|r| r.rejection_ratio).sum::<f64>() / tail.len() as f64
    }
}

/// Trains a [`SchedInspector`] for one (base policy, trace, metric) combo.
pub struct Trainer {
    config: InspectorConfig,
    ppo: PpoTrainer,
    features: FeatureBuilder,
    factory: PolicyFactory,
    trace: JobTrace,
    sim: Simulator,
    rng: StdRng,
    baseline: BaselineCache,
}

impl Trainer {
    /// Create a trainer over `trace` (typically the train split) improving
    /// the base policy produced by `factory`.
    pub fn new(trace: JobTrace, factory: PolicyFactory, config: InspectorConfig) -> Self {
        let stats = trace.stats();
        let norm = Normalizer {
            max_estimate: stats.max_estimate.max(1.0),
            total_procs: trace.procs,
            max_wait: 86_400.0,
            max_interval: config.sim.max_interval,
            max_rejections: config.sim.max_rejections,
        };
        let features = FeatureBuilder {
            mode: config.features,
            metric: config.metric,
            norm,
        };
        let ppo = PpoTrainer::new(features.dim(), PpoConfig::default(), config.seed);
        let sim = Simulator::new(trace.procs, config.sim);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x7261_696E);
        let baseline = if config.baseline_cache {
            BaselineCache::new()
        } else {
            BaselineCache::disabled()
        };
        Trainer {
            config,
            ppo,
            features,
            factory,
            trace,
            sim,
            rng,
            baseline,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &InspectorConfig {
        &self.config
    }

    /// The feature builder in use.
    pub fn features(&self) -> &FeatureBuilder {
        &self.features
    }

    /// The baseline-run cache (hit/run counters for diagnostics).
    pub fn baseline_cache(&self) -> &BaselineCache {
        &self.baseline
    }

    /// Run one epoch: collect `batch_size` trajectories in parallel and
    /// update the networks.
    pub fn train_epoch(&mut self, epoch: usize) -> EpochRecord {
        let n = self.config.batch_size;
        let seq_len = self.config.seq_len;
        let max_start = self.trace.len().saturating_sub(seq_len);
        let starts: Vec<usize> = (0..n)
            .map(|_| {
                if max_start == 0 {
                    0
                } else {
                    self.rng.random_range(0..=max_start)
                }
            })
            .collect();
        let episode_seed_base = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(epoch as u64);

        let workers = if self.config.workers == 0 {
            default_workers(n)
        } else {
            self.config.workers
        };
        let policy = self.ppo.policy.clone();
        let (sim, features, factory, trace, config, baseline) = (
            &self.sim,
            &self.features,
            &self.factory,
            &self.trace,
            &self.config,
            &self.baseline,
        );
        let episodes = parallel_map(n, workers, |i| {
            let jobs = trace.sequence(starts[i], seq_len);
            let base = baseline.get_or_run(starts[i], || {
                let mut p = factory();
                sim.run(&jobs, p.as_mut())
            });
            run_episode_with_base(
                sim,
                &jobs,
                factory,
                base,
                &policy,
                features,
                config.reward,
                config.metric,
                episode_seed_base.wrapping_add(i as u64),
                true,
            )
        });

        let m = self.config.metric;
        let base_metric = episodes.iter().map(|e| e.base.metric(m)).sum::<f64>() / n.max(1) as f64;
        let inspected_metric =
            episodes.iter().map(|e| e.inspected.metric(m)).sum::<f64>() / n.max(1) as f64;
        let improvement_pct = episodes
            .iter()
            .map(|e| {
                let b = e.base.metric(m);
                if b.abs() < 1e-12 {
                    0.0
                } else {
                    (b - e.inspected.metric(m)) / b
                }
            })
            .sum::<f64>()
            / n.max(1) as f64;
        let inspections: u64 = episodes.iter().map(|e| e.inspected.inspections).sum();
        let rejections: u64 = episodes.iter().map(|e| e.inspected.rejections).sum();

        let batch = Batch {
            trajectories: episodes.into_iter().map(|e| e.trajectory).collect(),
        };
        let mean_reward = batch.mean_reward();
        let stats = self.ppo.update(&batch);

        EpochRecord {
            epoch,
            mean_reward,
            improvement: base_metric - inspected_metric,
            improvement_pct,
            base_metric,
            inspected_metric,
            rejection_ratio: if inspections == 0 {
                0.0
            } else {
                rejections as f64 / inspections as f64
            },
            stats,
        }
    }

    /// Train for `config.epochs` epochs, returning the training curve.
    pub fn train(&mut self) -> TrainingHistory {
        let mut history = TrainingHistory::default();
        for epoch in 0..self.config.epochs {
            history.records.push(self.train_epoch(epoch));
        }
        history
    }

    /// Snapshot the current policy as a deployable inspector.
    pub fn inspector(&self) -> SchedInspector {
        SchedInspector::new(self.ppo.policy.clone(), self.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::factory_for;
    use policies::PolicyKind;
    use workload::Job;

    fn tiny_trace() -> JobTrace {
        // A congested 8-proc machine with a mix of long-wide and short jobs:
        // enough structure for the inspector to find rejection opportunities.
        let mut jobs = Vec::new();
        for i in 0..400u64 {
            let (rt, procs) = match i % 5 {
                0 => (2400.0, 6),
                1 => (300.0, 2),
                2 => (600.0, 1),
                3 => (3000.0, 4),
                _ => (120.0, 1),
            };
            jobs.push(Job::new(i + 1, i as f64 * 150.0, rt, rt * 1.5, procs));
        }
        JobTrace::new("tiny", 8, jobs).unwrap()
    }

    #[test]
    fn one_epoch_produces_finite_record() {
        let config = InspectorConfig {
            batch_size: 6,
            seq_len: 24,
            epochs: 1,
            seed: 3,
            workers: 2,
            ..Default::default()
        };
        let mut t = Trainer::new(tiny_trace(), factory_for(PolicyKind::Sjf), config);
        let rec = t.train_epoch(0);
        assert!(rec.base_metric.is_finite());
        assert!(rec.inspected_metric.is_finite());
        assert!(rec.mean_reward.is_finite());
        assert!((0.0..=1.0).contains(&rec.rejection_ratio));
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed_and_workers() {
        let config = InspectorConfig {
            batch_size: 4,
            seq_len: 16,
            epochs: 2,
            seed: 9,
            workers: 2,
            ..Default::default()
        };
        let run = || {
            let mut t = Trainer::new(tiny_trace(), factory_for(PolicyKind::Sjf), config);
            t.train()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mk = |workers| InspectorConfig {
            batch_size: 4,
            seq_len: 16,
            epochs: 1,
            seed: 5,
            workers,
            ..Default::default()
        };
        let run = |workers| {
            let mut t = Trainer::new(tiny_trace(), factory_for(PolicyKind::Sjf), mk(workers));
            t.train_epoch(0)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn cached_and_uncached_training_are_bit_identical() {
        let mk = |baseline_cache| InspectorConfig {
            batch_size: 6,
            seq_len: 16,
            epochs: 3,
            seed: 11,
            workers: 2,
            baseline_cache,
            ..Default::default()
        };
        let run = |baseline_cache| {
            let mut t = Trainer::new(
                tiny_trace(),
                factory_for(PolicyKind::Sjf),
                mk(baseline_cache),
            );
            (t.train(), t.baseline_cache().base_runs())
        };
        let (cached, cached_runs) = run(true);
        let (uncached, uncached_runs) = run(false);
        assert_eq!(cached, uncached);
        // The bypass path really re-simulated every episode's baseline.
        assert_eq!(uncached_runs, 6 * 3);
        assert!(cached_runs <= uncached_runs);
    }

    #[test]
    fn base_runs_match_distinct_start_offsets() {
        // seq_len == trace length - small max_start forces heavy offset reuse.
        let config = InspectorConfig {
            batch_size: 12,
            seq_len: 395,
            epochs: 2,
            seed: 2,
            workers: 3,
            ..Default::default()
        };
        let mut t = Trainer::new(tiny_trace(), factory_for(PolicyKind::Sjf), config);
        t.train();
        let cache = t.baseline_cache();
        // max_start = 400 - 395 = 5, so at most 6 distinct offsets exist.
        assert!(cache.base_runs() <= 6, "base runs: {}", cache.base_runs());
        assert_eq!(cache.base_runs() as usize, cache.len());
        assert_eq!(cache.lookups(), 12 * 2);
        assert_eq!(cache.hits(), cache.lookups() - cache.base_runs());
    }

    #[test]
    fn inspector_snapshot_matches_feature_dim() {
        let config = InspectorConfig::quick();
        let t = Trainer::new(tiny_trace(), factory_for(PolicyKind::Sjf), config);
        let insp = t.inspector();
        assert_eq!(insp.policy.input_dim(), t.features().dim());
    }
}
