//! Memoized baseline runs.
//!
//! The reward in every episode compares the inspected run against the base
//! policy's run on the *same* job sequence. Sequences are drawn from a fixed
//! trace and identified entirely by their start offset (`JobTrace::sequence`
//! rebases submit times deterministically), and the base policy is
//! deterministic, so re-simulating the base run for a start offset that was
//! already seen — which happens constantly across epochs — is pure waste.
//!
//! [`BaselineCache`] memoizes base [`SimResult`]s keyed by start offset. It
//! is shared across epochs and across rollout workers: the outer map sits
//! behind a [`parking_lot::RwLock`] (reads dominate after warm-up), and each
//! entry is an [`OnceLock`] cell so a missing result is computed exactly
//! once even when several workers race on the same offset — the losers block
//! on the cell rather than redoing the simulation. Invalidation is never
//! needed: the trace, the base policy, the sequence length, and the
//! simulator configuration are all fixed for the lifetime of the owning
//! trainer or evaluation call, so a cached result can never go stale.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use simhpc::SimResult;

type Cell = Arc<OnceLock<Arc<SimResult>>>;

/// A concurrent memo of base-policy simulation results, keyed by the
/// sequence's start offset in the trace.
#[derive(Debug, Default)]
pub struct BaselineCache {
    enabled: bool,
    entries: RwLock<HashMap<usize, Cell>>,
    base_runs: AtomicU64,
    lookups: AtomicU64,
}

impl BaselineCache {
    /// An empty, enabled cache.
    pub fn new() -> Self {
        BaselineCache {
            enabled: true,
            ..Default::default()
        }
    }

    /// A cache that never memoizes — every lookup runs the closure. Used to
    /// verify cached and uncached training produce identical results.
    pub fn disabled() -> Self {
        BaselineCache::default()
    }

    /// Whether lookups are memoized.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The base result for `start`, running `run` only if no worker has
    /// computed (or is computing) it yet.
    pub fn get_or_run(&self, start: usize, run: impl FnOnce() -> SimResult) -> Arc<SimResult> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if !self.enabled {
            self.base_runs.fetch_add(1, Ordering::Relaxed);
            return Arc::new(run());
        }
        let cell = {
            let map = self.entries.read();
            map.get(&start).cloned()
        };
        let cell = match cell {
            Some(cell) => cell,
            None => {
                let mut map = self.entries.write();
                map.entry(start).or_default().clone()
            }
        };
        cell.get_or_init(|| {
            self.base_runs.fetch_add(1, Ordering::Relaxed);
            Arc::new(run())
        })
        .clone()
    }

    /// Number of base simulations actually executed.
    pub fn base_runs(&self) -> u64 {
        self.base_runs.load(Ordering::Relaxed)
    }

    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Lookups answered from memory.
    pub fn hits(&self) -> u64 {
        self.lookups() - self.base_runs()
    }

    /// Fraction of lookups answered from memory (0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }

    /// Number of distinct start offsets held.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when no offset has been cached.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simhpc::{SimConfig, Simulator};
    use workload::Job;

    fn result_for(n: u64) -> SimResult {
        let jobs: Vec<Job> = (0..n)
            .map(|i| Job::new(i + 1, i as f64 * 10.0, 60.0, 120.0, 1))
            .collect();
        let sim = Simulator::new(4, SimConfig::default());
        sim.run(&jobs, policies::PolicyKind::Fcfs.build().as_mut())
    }

    #[test]
    fn second_lookup_hits() {
        let cache = BaselineCache::new();
        let a = cache.get_or_run(3, || result_for(5));
        let b = cache.get_or_run(3, || panic!("must not recompute"));
        assert_eq!(*a, *b);
        assert_eq!(cache.base_runs(), 1);
        assert_eq!(cache.lookups(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.hit_rate(), 0.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_offsets_each_run_once() {
        let cache = BaselineCache::new();
        for round in 0..3 {
            for start in [0usize, 7, 11] {
                cache.get_or_run(start, || result_for(start as u64 + 2));
            }
            assert_eq!(cache.base_runs(), 3, "round {round}");
        }
        assert_eq!(cache.lookups(), 9);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn disabled_cache_always_runs() {
        let cache = BaselineCache::disabled();
        cache.get_or_run(1, || result_for(3));
        cache.get_or_run(1, || result_for(3));
        assert_eq!(cache.base_runs(), 2);
        assert_eq!(cache.hits(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn racing_workers_compute_once_per_offset() {
        let cache = BaselineCache::new();
        let runs = rlcore::parallel_map(32, 8, |i| cache.get_or_run(i % 4, || result_for(4)));
        assert_eq!(cache.base_runs(), 4);
        assert_eq!(cache.lookups(), 32);
        for r in &runs {
            assert_eq!(**r, *runs[0]);
        }
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache = BaselineCache::new();
        assert_eq!(cache.hit_rate(), 0.0);
        assert!(cache.is_empty());
    }
}
