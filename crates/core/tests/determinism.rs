//! Determinism regression: two trainings from the same seed must be
//! bit-for-bit identical — byte-equal serialized checkpoints, identical
//! epoch histories, and telemetry counters that reconcile exactly with
//! the configured episode count. Guards the seeded-sub-RNG contract that
//! makes every experiment in this repo replayable.

use inspector::{model_io, InspectorConfig, Trainer};
use obs::Telemetry;
use policies::PolicyKind;
use workload::{profiles, synthetic};

fn config() -> InspectorConfig {
    InspectorConfig {
        batch_size: 6,
        seq_len: 24,
        epochs: 3,
        seed: 42,
        // Two rollout workers on purpose: parallel rollouts must not
        // introduce scheduling-order nondeterminism into the update.
        workers: 2,
        ..Default::default()
    }
}

fn run_once() -> (String, Vec<(f64, f64)>, u64, u64) {
    let trace = synthetic::generate(&profiles::SDSC_SP2, 96, 7);
    let (telemetry, sink) = Telemetry::in_memory();
    let mut trainer = Trainer::builder(trace)
        .policy(PolicyKind::Sjf)
        .config(config())
        .telemetry(telemetry)
        .build()
        .expect("valid trainer config");
    let history = trainer.train();
    let checkpoint = model_io::to_text(&trainer.inspector());
    let curve: Vec<(f64, f64)> = history
        .records
        .iter()
        .map(|r| (r.base_metric, r.improvement_pct))
        .collect();
    (
        checkpoint,
        curve,
        sink.counter_total("train.episodes"),
        sink.counter_total("train.inspections"),
    )
}

#[test]
fn same_seed_trains_byte_identical_checkpoints() {
    let (ckpt_a, curve_a, episodes_a, inspections_a) = run_once();
    let (ckpt_b, curve_b, episodes_b, inspections_b) = run_once();

    assert_eq!(
        ckpt_a, ckpt_b,
        "same seed must serialize byte-identical checkpoints"
    );
    // Epoch-by-epoch float equality, not mere closeness: any drift means
    // a nondeterministic reduction snuck into rollout or update.
    assert_eq!(curve_a, curve_b, "training curves diverged");

    // Telemetry reconciles with the configured episode count.
    let cfg = config();
    assert_eq!(episodes_a, (cfg.epochs * cfg.batch_size) as u64);
    assert_eq!(episodes_a, episodes_b);
    assert_eq!(inspections_a, inspections_b);
    assert!(inspections_a > 0, "training must inspect some decisions");
}

#[test]
fn different_seeds_actually_diverge() {
    // The equality above is only meaningful if the checkpoint is
    // seed-sensitive at all.
    let trace = synthetic::generate(&profiles::SDSC_SP2, 96, 7);
    let mut a = Trainer::builder(trace.clone())
        .policy(PolicyKind::Sjf)
        .config(config())
        .build()
        .unwrap();
    let mut b = Trainer::builder(trace)
        .policy(PolicyKind::Sjf)
        .config(InspectorConfig {
            seed: 43,
            ..config()
        })
        .build()
        .unwrap();
    a.train();
    b.train();
    assert_ne!(
        model_io::to_text(&a.inspector()),
        model_io::to_text(&b.inspector()),
        "different seeds produced the same weights"
    );
}
