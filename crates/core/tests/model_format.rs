//! Property tests for the model text format: serialization round-trips
//! exactly over the whole configuration space, and corrupt input is
//! rejected with a line-numbered error instead of a panic.

use inspector::model_io::{from_text, to_text};
use inspector::{FeatureBuilder, FeatureMode, Normalizer, SchedInspector};
use proptest::prelude::*;
use rlcore::BinaryPolicy;
use simhpc::Metric;

fn build(mode_i: usize, metric_i: usize, seed: u64, norm: Normalizer) -> SchedInspector {
    let mode = [
        FeatureMode::Manual,
        FeatureMode::Compacted,
        FeatureMode::Native,
    ][mode_i % 3];
    let metric = [Metric::Bsld, Metric::Wait, Metric::MaxBsld][metric_i % 3];
    let features = FeatureBuilder { mode, metric, norm };
    SchedInspector::new(BinaryPolicy::new(features.dim(), seed), features)
}

proptest! {
    /// Floats are printed with the shortest representation that re-parses
    /// to the same value, so a save → load cycle is bit-exact: the whole
    /// inspector (weights included) compares equal.
    #[test]
    fn text_roundtrip_is_exact(
        mode_i in 0..3usize,
        metric_i in 0..3usize,
        seed in 0..u64::MAX,
        procs in 1u32..10_000,
        max_estimate in 1.0f64..200_000.0,
        max_wait in 1.0f64..1_000_000.0,
        max_interval in 1.0f64..10_000.0,
        max_rejections in 1u32..1_000,
    ) {
        let insp = build(mode_i, metric_i, seed, Normalizer {
            max_estimate,
            total_procs: procs,
            max_wait,
            max_interval,
            max_rejections,
        });
        let text = to_text(&insp);
        let back = from_text(&text).expect("serialized model re-parses");
        prop_assert_eq!(&insp, &back);
        // And the round-trip is a fixed point.
        prop_assert_eq!(to_text(&back), text);
    }

    /// Arbitrary garbage never panics the parser and always reports a
    /// 1-based line number.
    #[test]
    fn garbage_is_rejected_with_a_line_number(
        text in "[a-z0-9 .\\-]{0,200}",
    ) {
        let err = from_text(&text).expect_err("garbage must not parse");
        let line = err.line().expect("parse failures carry a line number");
        prop_assert!(line >= 1);
        prop_assert!(err.to_string().starts_with(&format!("line {line}:")));
    }

    /// Single-line corruptions of a valid checkpoint are rejected, and the
    /// reported line number points into the preamble that was damaged.
    #[test]
    fn corrupting_one_preamble_line_is_detected(
        seed in 0..u64::MAX,
        victim in 0..5usize,
    ) {
        let insp = build(0, 0, seed, Normalizer::new(256, 7_200.0));
        let good = to_text(&insp);
        let mut lines: Vec<&str> = good.lines().collect();
        lines[victim] = "garbage line";
        let bad = lines.join("\n");
        let err = from_text(&bad).expect_err("corrupt preamble must not parse");
        prop_assert_eq!(err.line(), Some(victim + 1));
    }

    /// Truncating the policy payload is caught (attributed to the policy
    /// section), never a panic or a silently smaller network.
    #[test]
    fn truncated_policy_payload_is_rejected(
        seed in 0..u64::MAX,
        keep in 6..20usize,
    ) {
        let insp = build(0, 0, seed, Normalizer::new(256, 7_200.0));
        let good = to_text(&insp);
        let total = good.lines().count();
        let keep = keep.clamp(6, total - 1);
        let bad: String = good.lines().take(keep).collect::<Vec<_>>().join("\n");
        let err = from_text(&bad).expect_err("truncated model must not parse");
        prop_assert!(err.line().unwrap_or(0) >= 6, "policy errors point at the section: {err}");
    }
}
