//! Property tests on the cluster allocator: free-processor accounting is
//! conserved under arbitrary start/release interleavings, and EASY
//! reservations are sound (enough processors really are free at the
//! reserved time, by estimates).

use proptest::prelude::*;
use simhpc::Cluster;

#[derive(Debug, Clone)]
enum Op {
    Start { procs: u32, runtime: f64, over: f64 },
    Advance { dt: f64 },
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u32..16, 1.0f64..500.0, 1.0f64..3.0).prop_map(|(procs, runtime, over)| Op::Start {
                procs,
                runtime,
                over
            }),
            (1.0f64..400.0).prop_map(|dt| Op::Advance { dt }),
        ],
        1..60,
    )
}

proptest! {
    #[test]
    fn accounting_is_conserved(ops in ops_strategy()) {
        let total = 16u32;
        let mut c = Cluster::new(total);
        let mut now = 0.0;
        let mut id = 0u64;
        for op in ops {
            match op {
                Op::Start { procs, runtime, over } => {
                    if c.can_run(procs) {
                        id += 1;
                        c.start(id, procs, now, runtime, runtime * over);
                    }
                }
                Op::Advance { dt } => {
                    now += dt;
                    c.release_up_to(now);
                }
            }
            // Invariant: free + running allocations == total.
            let running: u32 = c.running().map(|r| r.procs).sum();
            prop_assert_eq!(c.free_procs() + running, total);
            // Invariant: no completed job lingers.
            prop_assert!(c.running().all(|r| r.end > now));
        }
        // Draining everything restores the full machine.
        c.release_up_to(f64::INFINITY);
        prop_assert_eq!(c.free_procs(), total);
    }

    /// The reservation time really provides the processors (under the
    /// scheduler's estimate-based view).
    #[test]
    fn reservations_are_sound(
        starts in prop::collection::vec((1u32..12, 1.0f64..500.0), 1..10),
        need in 1u32..16,
    ) {
        let total = 16u32;
        let mut c = Cluster::new(total);
        for (i, (procs, runtime)) in starts.iter().enumerate() {
            if c.can_run(*procs) {
                c.start(i as u64 + 1, *procs, 0.0, *runtime, *runtime);
            }
        }
        if let Some((t_res, extra)) = c.reservation(need, 0.0) {
            // Free at t_res (by estimates) = free now + all est_end <= t_res.
            let released: u32 = c
                .running()
                .filter(|r| r.est_end <= t_res)
                .map(|r| r.procs)
                .sum();
            let free_at_res = c.free_procs() + released;
            prop_assert!(free_at_res >= need);
            prop_assert_eq!(free_at_res - need, extra);
        } else {
            prop_assert!(need > total);
        }
    }
}
