//! Property tests on the full simulator: for arbitrary job sets and both
//! queue disciplines, with and without backfilling, the simulation conserves
//! resources and respects causality.

use proptest::prelude::*;
use simhpc::{PolicyContext, SchedulingPolicy, SimConfig, SimResult, Simulator};
use workload::Job;

const TOTAL_PROCS: u32 = 8;

/// Minimal local policies so this crate's tests stay independent of the
/// `policies` crate (which depends on `simhpc`).
struct Fcfs;
impl SchedulingPolicy for Fcfs {
    fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
        job.submit
    }
    fn name(&self) -> &str {
        "FCFS"
    }
}

struct Sjf;
impl SchedulingPolicy for Sjf {
    fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
        job.estimate
    }
    fn name(&self) -> &str {
        "SJF"
    }
}

fn jobs_strategy() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        // (submit gap, runtime, estimate overshoot, procs)
        (
            0.0f64..300.0,
            1.0f64..2_000.0,
            1.0f64..2.5,
            1u32..=TOTAL_PROCS,
        ),
        1..40,
    )
    .prop_map(|specs| {
        let mut submit = 0.0;
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (gap, runtime, over, procs))| {
                submit += gap;
                Job::new(i as u64 + 1, submit, runtime, runtime * over, procs)
            })
            .collect()
    })
}

/// Sweep the outcome's start/end events in time order and check that the
/// allocation never exceeds the machine.
fn assert_never_over_allocated(result: &SimResult) {
    // At equal timestamps the simulator releases completed jobs before
    // starting new ones, so order releases (0) ahead of starts (1).
    let mut events: Vec<(f64, u8, i64)> = Vec::new();
    for o in &result.outcomes {
        events.push((o.start, 1, o.procs as i64));
        events.push((o.end, 0, -(o.procs as i64)));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut in_use = 0i64;
    for (t, _, delta) in events {
        in_use += delta;
        assert!(
            (0..=TOTAL_PROCS as i64).contains(&in_use),
            "allocation {in_use}/{TOTAL_PROCS} out of range at t={t}"
        );
    }
    assert_eq!(in_use, 0, "all allocations must be returned");
}

fn check_invariants(jobs: &[Job], result: &SimResult) {
    assert_eq!(
        result.outcomes.len(),
        jobs.len(),
        "every job must finish exactly once"
    );
    for job in jobs {
        let o = result
            .outcomes
            .iter()
            .find(|o| o.id == job.id)
            .unwrap_or_else(|| panic!("job {} missing from outcomes", job.id));
        assert!(
            o.start >= job.submit,
            "job {} started at {} before submit {}",
            job.id,
            o.start,
            job.submit
        );
        assert_eq!(o.runtime, job.runtime);
        assert_eq!(o.procs, job.procs);
        assert_eq!(o.end, o.start + o.runtime);
    }
    assert_never_over_allocated(result);
}

proptest! {
    #[test]
    fn fcfs_conserves_resources(jobs in jobs_strategy()) {
        for config in [SimConfig::default(), SimConfig::with_backfill()] {
            let sim = Simulator::new(TOTAL_PROCS, config);
            let result = sim.run(&jobs, &mut Fcfs);
            check_invariants(&jobs, &result);
        }
    }

    #[test]
    fn sjf_conserves_resources(jobs in jobs_strategy()) {
        for config in [SimConfig::default(), SimConfig::with_backfill()] {
            let sim = Simulator::new(TOTAL_PROCS, config);
            let result = sim.run(&jobs, &mut Sjf);
            check_invariants(&jobs, &result);
        }
    }

    /// Backfilling may reorder starts but never changes what completes.
    #[test]
    fn backfilling_completes_the_same_job_set(jobs in jobs_strategy()) {
        let plain = Simulator::new(TOTAL_PROCS, SimConfig::default()).run(&jobs, &mut Sjf);
        let filled = Simulator::new(TOTAL_PROCS, SimConfig::with_backfill()).run(&jobs, &mut Sjf);
        let mut a: Vec<u64> = plain.outcomes.iter().map(|o| o.id).collect();
        let mut b: Vec<u64> = filled.outcomes.iter().map(|o| o.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
