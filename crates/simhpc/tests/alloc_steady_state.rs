//! Spot-check that the simulator's hot loop is allocation-free in steady
//! state: once the queue/observation/reservation scratch buffers have grown
//! to the episode's working size, scheduling more jobs must not allocate
//! (beyond the amortized growth of the outcomes vector itself).
//!
//! A single `#[test]` lives in this binary so the global allocation counter
//! is never shared between concurrently running tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use obs::{NullSink, Telemetry};
use simhpc::{NoInspector, PolicyContext, SchedulingPolicy, SimConfig, Simulator};
use workload::Job;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

struct Sjf;
impl SchedulingPolicy for Sjf {
    fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
        job.estimate
    }
    fn name(&self) -> &str {
        "SJF"
    }
}

/// A congested-but-stable workload: the queue depth oscillates around a
/// fixed level regardless of how many jobs flow through, so scratch buffers
/// stop growing early and extra jobs only exercise the steady-state path.
fn jobs(n: u64) -> Vec<Job> {
    (0..n)
        .map(|i| {
            let (rt, procs) = match i % 4 {
                0 => (900.0, 4),
                1 => (120.0, 1),
                2 => (300.0, 2),
                _ => (600.0, 1),
            };
            Job::new(i + 1, i as f64 * 140.0, rt, rt * 1.5, procs)
        })
        .collect()
}

#[test]
fn scheduling_points_do_not_allocate_in_steady_state() {
    for config in [SimConfig::default(), SimConfig::with_backfill()] {
        let small = jobs(500);
        let large = jobs(2_000);
        let sim = Simulator::new(8, config);

        let a_small = count_allocs(|| {
            sim.run(&small, &mut Sjf);
        });
        let a_large = count_allocs(|| {
            sim.run(&large, &mut Sjf);
        });

        // 4x the jobs => 4x the scheduling points. If any per-point
        // allocation remained, a_large would exceed a_small by thousands;
        // the only allowed extra is the outcomes vector's amortized doubling
        // (a handful of reallocs) on top of identical buffer warm-up.
        let extra = a_large.saturating_sub(a_small);
        assert!(
            extra <= 16,
            "backfill={}: {a_small} allocs for 500 jobs vs {a_large} for 2000 \
             ({extra} extra) — the hot loop is allocating per scheduling point",
            config.backfill,
        );

        // Same invariant with telemetry *enabled*: an active handle backed by
        // a NullSink emits an event at every scheduling point, and because
        // event names are `&'static str` and the sink discards without
        // buffering, the traced hot loop must stay allocation-free too.
        let telemetry = Telemetry::new(std::sync::Arc::new(NullSink));
        let t_small = count_allocs(|| {
            sim.run_traced(&small, &mut Sjf, &mut NoInspector, &telemetry);
        });
        let t_large = count_allocs(|| {
            sim.run_traced(&large, &mut Sjf, &mut NoInspector, &telemetry);
        });
        let extra = t_large.saturating_sub(t_small);
        assert!(
            extra <= 16,
            "backfill={}: NullSink telemetry allocates per scheduling point \
             ({t_small} allocs for 500 jobs vs {t_large} for 2000, {extra} extra)",
            config.backfill,
        );
    }
}
