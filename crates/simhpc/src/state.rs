//! Scheduling-point observations: what the inspector gets to see.

use serde::{Deserialize, Serialize};
use workload::Job;

/// A waiting job as visible at a scheduling point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueEntry {
    /// Job id.
    pub id: u64,
    /// How long the job has been waiting (seconds).
    pub wait: f64,
    /// Estimated runtime.
    pub estimate: f64,
    /// Requested processors.
    pub procs: u32,
}

/// Everything the inspector observes about one scheduling decision (§3.3's
/// "Env. State"): the scheduled job, its rejection history, the waiting
/// queue, and the cluster status. Feature vectors are built from this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Current simulation time.
    pub now: f64,
    /// The job the base policy selected.
    pub job: Job,
    /// Selected job's waiting time so far (`wait_j`).
    pub wait: f64,
    /// How many times this job has already been rejected.
    pub rejections: u32,
    /// The rejection cap (`MAX_REJECTION_TIMES`).
    pub max_rejections: u32,
    /// Free processors.
    pub free_procs: u32,
    /// Total processors.
    pub total_procs: u32,
    /// Whether the selected job can start immediately.
    pub runnable: bool,
    /// Whether backfilling is enabled in this simulation.
    pub backfill_enabled: bool,
    /// Number of waiting jobs that could be backfilled while the selected
    /// job waits (0 when backfilling is disabled or the job is runnable).
    pub backfillable: u32,
    /// The other waiting jobs (selected job excluded).
    pub queue: Vec<QueueEntry>,
}

impl Observation {
    /// Cluster availability `n_free / n_total` in `[0, 1]`.
    pub fn availability(&self) -> f64 {
        self.free_procs as f64 / self.total_procs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_ratio() {
        let obs = Observation {
            now: 0.0,
            job: Job::new(1, 0.0, 10.0, 10.0, 2),
            wait: 0.0,
            rejections: 0,
            max_rejections: 72,
            free_procs: 32,
            total_procs: 128,
            runnable: true,
            backfill_enabled: false,
            backfillable: 0,
            queue: vec![],
        };
        assert_eq!(obs.availability(), 0.25);
    }
}
