//! EASY backfilling.
//!
//! When the committed (accepted, highest-priority) job cannot start for
//! lack of processors, the simulator computes its *reservation*: the
//! earliest time enough processors are estimated to become free. Waiting
//! jobs may then be started out of order iff they cannot delay that
//! reservation — either they finish (by estimate) before it, or they fit
//! into the processors left over at reservation time.

use workload::Job;

use crate::cluster::Cluster;

/// Whether `candidate` may backfill at `now` against a reservation at
/// `t_res` with `extra` spare processors.
pub fn can_backfill(candidate: &Job, now: f64, cluster: &Cluster, t_res: f64, extra: u32) -> bool {
    cluster.can_run(candidate.procs)
        && (now + candidate.estimate <= t_res || candidate.procs <= extra)
}

/// Count the queued jobs that could backfill right now (the paper's
/// "Backfilling Contributions" feature, §3.3).
pub fn count_backfillable(
    queue: impl Iterator<Item = Job>,
    now: f64,
    cluster: &Cluster,
    t_res: f64,
    extra: u32,
) -> u32 {
    queue
        .filter(|j| can_backfill(j, now, cluster, t_res, extra))
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(procs: u32, estimate: f64) -> Job {
        Job::new(1, 0.0, estimate, estimate, procs)
    }

    #[test]
    fn short_job_backfills_before_reservation() {
        let mut c = Cluster::new(10);
        c.start(99, 8, 0.0, 50.0, 50.0); // frees at t=50
        let (t_res, extra) = c.reservation(6, 0.0).unwrap();
        assert_eq!(t_res, 50.0);
        assert_eq!(extra, 4); // 2 free + 8 released - 6 needed
                              // 2-proc 30 s job: finishes before t=50 → ok.
        assert!(can_backfill(&job(2, 30.0), 0.0, &c, t_res, extra));
        // 2-proc 100 s job: outlives the reservation but fits the 4 extra.
        assert!(can_backfill(&job(2, 100.0), 0.0, &c, t_res, extra));
    }

    #[test]
    fn long_wide_job_cannot_backfill() {
        let mut c = Cluster::new(10);
        c.start(99, 5, 0.0, 50.0, 50.0);
        let (t_res, extra) = c.reservation(8, 0.0).unwrap();
        assert_eq!(extra, 2);
        // 5-proc 100 s job would delay the reservation: too wide for the
        // extra and too long to finish first.
        assert!(!can_backfill(&job(5, 100.0), 0.0, &c, t_res, extra));
    }

    #[test]
    fn cannot_backfill_without_free_procs() {
        let mut c = Cluster::new(10);
        c.start(99, 10, 0.0, 50.0, 50.0);
        let (t_res, extra) = c.reservation(4, 0.0).unwrap();
        assert!(!can_backfill(&job(1, 1.0), 0.0, &c, t_res, extra));
    }

    #[test]
    fn counting_matches_predicate() {
        let mut c = Cluster::new(10);
        c.start(99, 8, 0.0, 50.0, 50.0);
        let (t_res, extra) = c.reservation(6, 0.0).unwrap();
        let queue = vec![job(2, 30.0), job(2, 100.0), job(3, 100.0)];
        // First two qualify (see above); the third needs 3 procs but only 2
        // are free right now, so it cannot start at all.
        let n = count_backfillable(queue.into_iter(), 0.0, &c, t_res, extra);
        assert_eq!(n, 2);
    }
}
