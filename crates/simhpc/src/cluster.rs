//! Cluster resource state: processor allocation and running-job tracking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A totally ordered `f64` wrapper (via `total_cmp`) so completion times can
/// key a binary heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64Ord(pub f64);

impl Eq for F64Ord {}

impl PartialOrd for F64Ord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Ord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A job currently executing on the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningJob {
    /// Job id.
    pub id: u64,
    /// Allocated processors.
    pub procs: u32,
    /// Actual completion time (start + actual runtime).
    pub end: f64,
    /// Completion time the *scheduler* believes in (start + estimate).
    pub est_end: f64,
}

/// Processor-granular cluster state.
///
/// Jobs occupy `procs` processors from `start` until `end` (actual runtime);
/// the scheduler-side view uses `est_end` (estimates), which is what EASY
/// backfilling reservations are computed from (§3.2: actual runtime drives
/// completion, estimates drive scheduling).
/// Running jobs live in a slot map: `slots[i]` is either an executing job
/// or vacant, vacant slots are recycled through a free list, and the
/// completion heap keys `(actual end, slot)` so releasing a completed job
/// is O(log n) instead of an O(n) scan per completion.
#[derive(Debug, Clone)]
pub struct Cluster {
    total: u32,
    free: u32,
    // Min-heap on actual completion time.
    completions: BinaryHeap<Reverse<(F64Ord, usize)>>,
    slots: Vec<Option<RunningJob>>,
    vacant: Vec<usize>,
}

impl Cluster {
    /// A cluster with `total` free processors.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "cluster needs at least one processor");
        Cluster {
            total,
            free: total,
            completions: BinaryHeap::new(),
            slots: Vec::new(),
            vacant: Vec::new(),
        }
    }

    /// Total processors.
    pub fn total_procs(&self) -> u32 {
        self.total
    }

    /// Currently free processors.
    pub fn free_procs(&self) -> u32 {
        self.free
    }

    /// Whether `procs` processors are free right now.
    pub fn can_run(&self, procs: u32) -> bool {
        procs <= self.free
    }

    /// Jobs currently executing (in unspecified order).
    pub fn running(&self) -> impl Iterator<Item = &RunningJob> + '_ {
        self.slots.iter().flatten()
    }

    /// Start a job now. Panics (debug) if resources are insufficient —
    /// callers must check [`Cluster::can_run`] first.
    pub fn start(&mut self, id: u64, procs: u32, now: f64, runtime: f64, estimate: f64) {
        debug_assert!(
            self.can_run(procs),
            "over-allocation: {} > {}",
            procs,
            self.free
        );
        self.free -= procs;
        let end = now + runtime;
        let job = RunningJob {
            id,
            procs,
            end,
            est_end: now + estimate,
        };
        let slot = match self.vacant.pop() {
            Some(slot) => {
                self.slots[slot] = Some(job);
                slot
            }
            None => {
                self.slots.push(Some(job));
                self.slots.len() - 1
            }
        };
        self.completions.push(Reverse((F64Ord(end), slot)));
    }

    /// Earliest actual completion time of any running job.
    pub fn next_completion(&self) -> Option<f64> {
        self.completions.peek().map(|Reverse((F64Ord(t), _))| *t)
    }

    /// Release every job whose actual completion time is ≤ `now`.
    pub fn release_up_to(&mut self, now: f64) {
        while let Some(Reverse((F64Ord(t), slot))) = self.completions.peek().copied() {
            if t > now {
                break;
            }
            self.completions.pop();
            let done = self.slots[slot]
                .take()
                .expect("completion heap pointed at a vacant slot");
            self.free += done.procs;
            self.vacant.push(slot);
        }
        debug_assert!(self.free <= self.total);
    }

    /// Scheduler-side reservation for a job needing `procs` processors:
    /// the earliest time enough processors are *estimated* to be free, and
    /// the number of processors free beyond the job's need at that time.
    ///
    /// This is the anchor of EASY backfilling: candidates may run now only
    /// if they finish (by estimate) before the reservation or fit into the
    /// extra processors.
    pub fn reservation(&self, procs: u32, now: f64) -> Option<(f64, u32)> {
        let mut scratch = Vec::new();
        self.reservation_with(procs, now, &mut scratch)
    }

    /// [`Cluster::reservation`] using caller-provided scratch storage for
    /// the sorted release list, so the simulator's hot loop does not
    /// allocate. All releases sharing the crossing instant are absorbed
    /// before the extra-processor count is taken, which keeps the result
    /// independent of slot iteration order.
    pub fn reservation_with(
        &self,
        procs: u32,
        now: f64,
        scratch: &mut Vec<(f64, u32)>,
    ) -> Option<(f64, u32)> {
        if self.can_run(procs) {
            return Some((now, self.free - procs));
        }
        if procs > self.total {
            return None;
        }
        scratch.clear();
        scratch.extend(self.running().map(|r| (r.est_end.max(now), r.procs)));
        scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let mut free = self.free;
        let mut i = 0;
        while i < scratch.len() {
            let t = scratch[i].0;
            while i < scratch.len() && scratch[i].0 == t {
                free += scratch[i].1;
                i += 1;
            }
            if free >= procs {
                return Some((t, free - procs));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_and_release() {
        let mut c = Cluster::new(10);
        c.start(1, 4, 0.0, 5.0, 5.0);
        c.start(2, 3, 0.0, 10.0, 12.0);
        assert_eq!(c.free_procs(), 3);
        assert!(!c.can_run(4));
        assert_eq!(c.next_completion(), Some(5.0));
        c.release_up_to(5.0);
        assert_eq!(c.free_procs(), 7);
        c.release_up_to(10.0);
        assert_eq!(c.free_procs(), 10);
        assert_eq!(c.next_completion(), None);
    }

    #[test]
    fn release_is_inclusive_and_idempotent() {
        let mut c = Cluster::new(4);
        c.start(1, 2, 0.0, 3.0, 3.0);
        c.release_up_to(2.999);
        assert_eq!(c.free_procs(), 2);
        c.release_up_to(3.0);
        assert_eq!(c.free_procs(), 4);
        c.release_up_to(3.0);
        assert_eq!(c.free_procs(), 4);
    }

    #[test]
    fn reservation_when_free_now() {
        let c = Cluster::new(8);
        assert_eq!(c.reservation(5, 7.0), Some((7.0, 3)));
    }

    #[test]
    fn reservation_uses_estimates_not_actuals() {
        let mut c = Cluster::new(8);
        // Actual completion at t=5, but the scheduler believes t=20.
        c.start(1, 6, 0.0, 5.0, 20.0);
        let (t, extra) = c.reservation(4, 1.0).unwrap();
        assert_eq!(t, 20.0);
        assert_eq!(extra, 4); // 2 free + 6 released - 4 needed
    }

    #[test]
    fn reservation_accumulates_releases() {
        let mut c = Cluster::new(8);
        c.start(1, 4, 0.0, 10.0, 10.0);
        c.start(2, 4, 0.0, 20.0, 20.0);
        // Needs 6: 4 free at t=10, 8 free at t=20.
        let (t, extra) = c.reservation(6, 0.0).unwrap();
        assert_eq!(t, 20.0);
        assert_eq!(extra, 2);
    }

    #[test]
    fn reservation_impossible_for_oversized() {
        let c = Cluster::new(8);
        assert_eq!(c.reservation(9, 0.0), None);
    }

    #[test]
    fn f64ord_total_order() {
        let mut v = vec![F64Ord(3.0), F64Ord(-1.0), F64Ord(2.0)];
        v.sort();
        assert_eq!(v, vec![F64Ord(-1.0), F64Ord(2.0), F64Ord(3.0)]);
    }
}
