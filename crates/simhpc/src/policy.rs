//! Traits the simulator drives: base scheduling policies and inspectors.

use workload::Job;

use crate::state::Observation;

/// Context handed to a policy when scoring a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyContext {
    /// Current simulation time.
    pub now: f64,
    /// Total processors of the cluster.
    pub total_procs: u32,
    /// Currently free processors (lets learned policies reason about
    /// immediate runnability).
    pub free_procs: u32,
}

/// A base batch-job scheduling policy (Table 3).
///
/// Policies are *priority heuristics*: at each scheduling point the waiting
/// job with the **lowest score** is selected (ties broken by smaller job
/// id, as in the paper's motivating example). Stateful policies (Slurm
/// fairshare) update their accounting through [`SchedulingPolicy::on_start`].
pub trait SchedulingPolicy {
    /// Score a waiting job; lower runs first.
    fn score(&mut self, job: &Job, ctx: &PolicyContext) -> f64;

    /// Select the next job from a non-empty queue, returning its position
    /// *within the queue*.
    ///
    /// The queue is passed as indices into `jobs` (the simulated sequence)
    /// rather than as a materialized `Vec<Job>`, so the simulator's hot
    /// loop never clones the queue. The default is the priority-heuristic
    /// rule: lowest score, ties broken by smaller job id (the paper's
    /// convention). Learned policies that need a *joint* view of the queue
    /// (e.g. an RLScheduler-style softmax selector) override this.
    fn select(&mut self, queue: &[usize], jobs: &[Job], ctx: &PolicyContext) -> usize {
        debug_assert!(!queue.is_empty());
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, u64::MAX);
        for (pos, &jidx) in queue.iter().enumerate() {
            let job = &jobs[jidx];
            let key = (self.score(job, ctx), job.id);
            if key.0 < best_key.0 || (key.0 == best_key.0 && key.1 < best_key.1) {
                best_key = key;
                best = pos;
            }
        }
        best
    }

    /// Notification that a job started executing at `now`.
    fn on_start(&mut self, _job: &Job, _now: f64) {}

    /// Human-readable policy name (e.g. `"SJF"`).
    fn name(&self) -> &str;
}

/// The inspector interface: inspect a scheduling decision and decide
/// whether to reject it (`true` = reject, put the job back).
pub trait InspectorHook {
    /// Inspect one decision.
    fn inspect(&mut self, obs: &Observation) -> bool;
}

/// The trivial inspector: never rejects (plain base-policy scheduling).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInspector;

impl InspectorHook for NoInspector {
    fn inspect(&mut self, _obs: &Observation) -> bool {
        false
    }
}

/// Blanket impl so closures can serve as inspectors in tests and examples.
impl<F: FnMut(&Observation) -> bool> InspectorHook for F {
    fn inspect(&mut self, obs: &Observation) -> bool {
        self(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_an_inspector() {
        let mut count = 0usize;
        let mut hook = |_: &Observation| {
            count += 1;
            false
        };
        let obs = Observation {
            now: 0.0,
            job: Job::new(1, 0.0, 1.0, 1.0, 1),
            wait: 0.0,
            rejections: 0,
            max_rejections: 72,
            free_procs: 1,
            total_procs: 1,
            runnable: true,
            backfill_enabled: false,
            backfillable: 0,
            queue: vec![],
        };
        assert!(!hook.inspect(&obs));
        let _ = hook;
        assert_eq!(count, 1);
    }
}
