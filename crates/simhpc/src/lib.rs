//! `simhpc` — an event-driven HPC batch-scheduling simulator.
//!
//! This is the reproduction's equivalent of SchedGym (the RL-compatible
//! simulator from RLScheduler) extended exactly as the SchedInspector paper
//! describes (§3.2): it acknowledges *reject* decisions, tracks per-job
//! rejection counts, supports EASY backfilling, and distinguishes actual
//! runtimes (drive completions) from estimates (drive scheduling).
//!
//! # Example: SJF-style scheduling with a trivial inspector
//!
//! ```
//! use simhpc::{SimConfig, Simulator, SchedulingPolicy, PolicyContext};
//! use workload::Job;
//!
//! struct Sjf;
//! impl SchedulingPolicy for Sjf {
//!     fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 { job.estimate }
//!     fn name(&self) -> &str { "SJF" }
//! }
//!
//! let jobs = vec![
//!     Job::new(1, 0.0, 100.0, 100.0, 2),
//!     Job::new(2, 0.0, 10.0, 10.0, 2),
//! ];
//! let sim = Simulator::new(4, SimConfig::default());
//! let result = sim.run(&jobs, &mut Sjf);
//! assert_eq!(result.outcomes.len(), 2);
//! // Both fit at t=0, so both start immediately.
//! assert_eq!(result.wait(), 0.0);
//! ```

pub mod backfill;
mod cluster;
mod config;
mod metrics;
mod policy;
mod sim;
mod state;

pub use cluster::{Cluster, F64Ord, RunningJob};
pub use config::SimConfig;
pub use metrics::{JobOutcome, Metric, SimResult, BSLD_THRESHOLD};
pub use policy::{InspectorHook, NoInspector, PolicyContext, SchedulingPolicy};
pub use sim::{simulate, simulate_source, Simulator};
pub use state::{Observation, QueueEntry};

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Job;

    /// Minimal SJF for driver tests (the real one lives in `policies`).
    struct Sjf;
    impl SchedulingPolicy for Sjf {
        fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
            job.estimate
        }
        fn name(&self) -> &str {
            "SJF"
        }
    }

    /// FCFS for ordering tests.
    struct Fcfs;
    impl SchedulingPolicy for Fcfs {
        fn score(&mut self, job: &Job, _ctx: &PolicyContext) -> f64 {
            job.submit
        }
        fn name(&self) -> &str {
            "FCFS"
        }
    }

    fn sim(procs: u32) -> Simulator {
        Simulator::new(procs, SimConfig::default())
    }

    #[test]
    fn serial_execution_when_cluster_too_small() {
        // Two 4-proc jobs on a 4-proc machine: strictly serial.
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 100.0, 4),
            Job::new(2, 0.0, 100.0, 100.0, 4),
        ];
        let r = sim(4).run(&jobs, &mut Fcfs);
        let o1 = r.outcomes.iter().find(|o| o.id == 1).unwrap();
        let o2 = r.outcomes.iter().find(|o| o.id == 2).unwrap();
        assert_eq!(o1.start, 0.0);
        assert_eq!(o2.start, 100.0);
        assert_eq!(o2.wait(), 100.0);
    }

    #[test]
    fn sjf_prefers_short_jobs() {
        // Both queued jobs are waiting at the same scheduling point; SJF
        // must pick the short one first.
        let jobs = vec![
            Job::new(1, 0.0, 50.0, 50.0, 4),
            Job::new(2, 1.0, 100.0, 100.0, 4),
            Job::new(3, 1.0, 10.0, 10.0, 4),
        ];
        let r = sim(4).run(&jobs, &mut Sjf);
        let start = |id: u64| r.outcomes.iter().find(|o| o.id == id).unwrap().start;
        assert_eq!(start(3), 50.0, "short job selected first");
        assert_eq!(start(2), 60.0);
    }

    #[test]
    fn selected_job_commits_even_when_not_runnable() {
        // The paper's Fig. 1(b) no-inspect semantics: once the base policy
        // selects a job, it holds its place even if a shorter job arrives
        // while it waits for resources.
        let jobs = vec![
            Job::new(1, 0.0, 50.0, 50.0, 4),
            Job::new(2, 1.0, 100.0, 100.0, 4),
            Job::new(3, 2.0, 10.0, 10.0, 4), // arrives after job 2 commits
        ];
        let r = sim(4).run(&jobs, &mut Sjf);
        let start = |id: u64| r.outcomes.iter().find(|o| o.id == id).unwrap().start;
        assert_eq!(start(2), 50.0, "committed job keeps its slot");
        assert_eq!(start(3), 150.0);
    }

    #[test]
    fn arrivals_gate_scheduling() {
        let jobs = vec![Job::new(1, 1000.0, 10.0, 10.0, 1)];
        let r = sim(4).run(&jobs, &mut Fcfs);
        assert_eq!(r.outcomes[0].start, 1000.0);
        assert_eq!(r.outcomes[0].wait(), 0.0);
    }

    #[test]
    fn rejection_delays_job_until_next_arrival() {
        // Inspector rejects job 1 once at t=0; next scheduling point is the
        // arrival of job 2 at t=5, where SJF then prefers job 2.
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 100.0, 4),
            Job::new(2, 5.0, 10.0, 10.0, 4),
        ];
        let mut first = true;
        let mut inspector = |obs: &Observation| {
            let reject = first && obs.job.id == 1;
            first = false;
            reject
        };
        let r = sim(4).run_inspected(&jobs, &mut Sjf, &mut inspector);
        let start = |id: u64| r.outcomes.iter().find(|o| o.id == id).unwrap().start;
        assert_eq!(start(2), 5.0);
        assert_eq!(start(1), 15.0);
        assert_eq!(r.rejections, 1);
        assert!(r.inspections >= 2);
    }

    #[test]
    fn rejection_cap_is_enforced() {
        // An always-reject inspector: every job still completes because the
        // cap cuts inspection off after max_rejections.
        let jobs = vec![
            Job::new(1, 0.0, 10.0, 10.0, 1),
            Job::new(2, 1.0, 10.0, 10.0, 1),
        ];
        let config = SimConfig {
            max_rejections: 3,
            max_interval: 100.0,
            backfill: false,
        };
        let s = Simulator::new(2, config);
        let mut always = |_: &Observation| true;
        let r = s.run_inspected(&jobs, &mut Sjf, &mut always);
        assert_eq!(r.outcomes.len(), 2);
        assert_eq!(r.rejections, 6, "each job rejected exactly the cap");
        // Job 1: rejected at t=0 (next point: arrival t=1), then at 1
        // (next: 1+100), then at 101 → runs at 201.
        let o1 = r.outcomes.iter().find(|o| o.id == 1).unwrap();
        assert_eq!(o1.rejections, 3);
        assert_eq!(o1.start, 201.0);
    }

    #[test]
    fn max_interval_bounds_rejection_idle() {
        let jobs = vec![Job::new(1, 0.0, 10.0, 10.0, 1)];
        let config = SimConfig {
            max_rejections: 1,
            max_interval: 600.0,
            backfill: false,
        };
        let mut once = |_: &Observation| true;
        let r = Simulator::new(2, config).run_inspected(&jobs, &mut Sjf, &mut once);
        assert_eq!(r.outcomes[0].start, 600.0);
    }

    #[test]
    fn no_overallocation_ever() {
        // Dense random-ish workload; checked by reconstructing usage.
        let jobs: Vec<Job> = (0..200)
            .map(|i| {
                let procs = 1 + (i * 7 % 10) as u32;
                Job::new(
                    i as u64 + 1,
                    (i as f64) * 3.0,
                    20.0 + (i % 13) as f64 * 9.0,
                    40.0 + (i % 13) as f64 * 9.0,
                    procs,
                )
            })
            .collect();
        let r = sim(10).run(&jobs, &mut Sjf);
        assert_eq!(r.outcomes.len(), 200);
        // Sweep events: at every start, concurrent usage must fit.
        let mut events: Vec<(f64, i64)> = Vec::new();
        for o in &r.outcomes {
            events.push((o.start, o.procs as i64));
            events.push((o.end, -(o.procs as i64)));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut used = 0i64;
        for (_, delta) in events {
            used += delta;
            assert!(used <= 10, "over-allocation: {used}");
            assert!(used >= 0);
        }
    }

    #[test]
    fn backfill_fills_holes_without_delaying_head() {
        // Machine 10. Job1 takes 8 procs for 100 s. Job2 (9 procs) heads the
        // queue and must wait until t=100. Job3 (2 procs, 50 s) arrives and
        // can backfill into the hole without delaying job 2.
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 100.0, 8),
            Job::new(2, 1.0, 50.0, 50.0, 9),
            Job::new(3, 2.0, 50.0, 50.0, 2),
        ];
        let s = Simulator::new(10, SimConfig::with_backfill());
        let r = s.run(&jobs, &mut Fcfs);
        let find = |id: u64| *r.outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(find(3).start, 2.0, "job 3 backfills immediately");
        assert!(find(3).backfilled);
        assert_eq!(find(2).start, 100.0, "head job not delayed");
        assert!(!find(2).backfilled);
    }

    #[test]
    fn backfill_rejects_delaying_candidates() {
        // Same as above but job 3 is long (200 s): extra at reservation is
        // 10 - 9 = 1 < 2 procs, and 200 s outlives the reservation.
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 100.0, 8),
            Job::new(2, 1.0, 50.0, 50.0, 9),
            Job::new(3, 2.0, 200.0, 200.0, 2),
        ];
        let s = Simulator::new(10, SimConfig::with_backfill());
        let r = s.run(&jobs, &mut Fcfs);
        let find = |id: u64| *r.outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(find(2).start, 100.0);
        assert_eq!(
            find(3).start,
            150.0,
            "job 3 must not backfill; runs after job 2"
        );
        assert!(!find(3).backfilled);
    }

    #[test]
    fn without_backfill_holes_stay_idle() {
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 100.0, 8),
            Job::new(2, 1.0, 50.0, 50.0, 9),
            Job::new(3, 2.0, 50.0, 50.0, 2),
        ];
        let r = sim(10).run(&jobs, &mut Fcfs);
        let find = |id: u64| *r.outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(find(2).start, 100.0);
        assert_eq!(
            find(3).start,
            150.0,
            "no backfilling: job 3 runs after job 2"
        );
    }

    #[test]
    fn observation_reports_queue_and_cluster() {
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 100.0, 3),
            Job::new(2, 0.0, 200.0, 200.0, 2),
            Job::new(3, 0.0, 300.0, 300.0, 1),
        ];
        let mut seen = Vec::new();
        let mut spy = |obs: &Observation| {
            seen.push((obs.job.id, obs.queue.len(), obs.free_procs, obs.runnable));
            false
        };
        sim(4).run_inspected(&jobs, &mut Sjf, &mut spy);
        // First decision: job 1 selected, 2 others waiting, 4 free.
        assert_eq!(seen[0], (1, 2, 4, true));
        // Second decision: job 2 selected, 1 other waiting, 1 free, not runnable.
        assert_eq!(seen[1], (2, 1, 1, false));
    }

    #[test]
    fn empty_sequence_is_fine() {
        let r = sim(4).run(&[], &mut Sjf);
        assert!(r.outcomes.is_empty());
        assert_eq!(r.inspections, 0);
    }

    #[test]
    #[should_panic(expected = "wider than the machine")]
    fn oversized_job_panics() {
        let jobs = vec![Job::new(1, 0.0, 10.0, 10.0, 8)];
        let _ = sim(4).run(&jobs, &mut Sjf);
    }
}
