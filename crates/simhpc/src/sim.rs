//! The event-driven scheduling simulator (the paper's "Simulated Env").
//!
//! The driver mirrors SchedGym (RLScheduler) extended with rejection
//! support, as §3.2 describes:
//!
//! 1. arrivals are admitted into the waiting queue;
//! 2. at each scheduling point the base policy selects the top-priority
//!    waiting job;
//! 3. the inspector sees the full scheduling context; on **reject** the job
//!    returns to the queue and time advances to the next scheduling point
//!    (next arrival, next completion, or `now + MAX_INTERVAL`, whichever is
//!    first); a job rejected `MAX_REJECTION_TIMES` times is no longer
//!    inspected;
//! 4. on **accept** the job starts as soon as resources allow; while it
//!    waits, EASY backfilling (when enabled) may start other queued jobs.

use obs::Telemetry;
use workload::Job;

use crate::backfill::{can_backfill, count_backfillable};
use crate::cluster::Cluster;
use crate::config::SimConfig;
use crate::metrics::{JobOutcome, SimResult};
use crate::policy::{InspectorHook, NoInspector, PolicyContext, SchedulingPolicy};
use crate::state::{Observation, QueueEntry};

/// A reusable simulator bound to a machine size and configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Simulator {
    procs: u32,
    config: SimConfig,
}

impl Simulator {
    /// A simulator for a machine with `procs` processors.
    pub fn new(procs: u32, config: SimConfig) -> Self {
        assert!(procs > 0, "cluster needs at least one processor");
        assert!(config.max_interval > 0.0, "MAX_INTERVAL must be positive");
        Simulator { procs, config }
    }

    /// Machine size.
    pub fn procs(&self) -> u32 {
        self.procs
    }

    /// Simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run a sequence under the base policy alone.
    pub fn run(&self, jobs: &[Job], policy: &mut dyn SchedulingPolicy) -> SimResult {
        self.run_inspected(jobs, policy, &mut NoInspector)
    }

    /// Run a sequence with an inspector scrutinizing every decision.
    pub fn run_inspected(
        &self,
        jobs: &[Job],
        policy: &mut dyn SchedulingPolicy,
        inspector: &mut dyn InspectorHook,
    ) -> SimResult {
        self.run_traced(jobs, policy, inspector, &Telemetry::disabled())
    }

    /// Like [`Simulator::run_inspected`], but streaming per-scheduling-point
    /// telemetry: `sim.accept` / `sim.reject` / `sim.backfill` counters and a
    /// `sim.util` utilization gauge sampled at every inspected decision. With
    /// a disabled handle this *is* `run_inspected` — the hot loop only pays
    /// an `Option` check per scheduling point.
    pub fn run_traced(
        &self,
        jobs: &[Job],
        policy: &mut dyn SchedulingPolicy,
        inspector: &mut dyn InspectorHook,
        telemetry: &Telemetry,
    ) -> SimResult {
        assert!(
            jobs.iter().all(|j| j.procs <= self.procs),
            "sequence contains a job wider than the machine"
        );
        Sim::new(jobs, self.procs, self.config, telemetry).run(policy, inspector)
    }
}

/// Convenience: simulate a sequence on a machine sized to its widest job.
/// Prefer [`Simulator`] where the trace's real machine size is known.
pub fn simulate(jobs: &[Job], policy: &mut dyn SchedulingPolicy, config: &SimConfig) -> SimResult {
    let procs = jobs.iter().map(|j| j.procs).max().unwrap_or(1);
    Simulator::new(procs, *config).run(jobs, policy)
}

/// Simulate a whole trace obtained from any [`workload::TraceSource`]
/// (SWF archive, calibrated synthetic profile, scenario-compiled, ...) on
/// its own machine size. This is the source-based entry point the unified
/// ingestion API routes through; the underlying loop is [`Simulator::run`].
pub fn simulate_source(
    source: &dyn workload::TraceSource,
    policy: &mut dyn SchedulingPolicy,
    config: &SimConfig,
) -> Result<SimResult, workload::SourceError> {
    let trace = source.load()?;
    Ok(Simulator::new(trace.procs, *config).run(&trace.jobs, policy))
}

struct Sim<'a> {
    jobs: &'a [Job],
    config: SimConfig,
    telemetry: &'a Telemetry,
    cluster: Cluster,
    /// Indices (into `jobs`) of waiting jobs.
    queue: Vec<usize>,
    /// Per-job rejection counts.
    rejections: Vec<u32>,
    next_arrival: usize,
    now: f64,
    outcomes: Vec<JobOutcome>,
    inspections: u64,
    total_rejections: u64,
    /// Reusable storage for [`Observation::queue`], reclaimed after every
    /// inspection so the steady-state loop does not allocate.
    obs_scratch: Vec<QueueEntry>,
    /// Reusable storage for [`Cluster::reservation_with`]'s release list.
    res_scratch: Vec<(f64, u32)>,
}

impl<'a> Sim<'a> {
    fn new(jobs: &'a [Job], procs: u32, config: SimConfig, telemetry: &'a Telemetry) -> Self {
        Sim {
            jobs,
            config,
            telemetry,
            cluster: Cluster::new(procs),
            queue: Vec::new(),
            rejections: vec![0; jobs.len()],
            next_arrival: 0,
            now: 0.0,
            outcomes: Vec::with_capacity(jobs.len()),
            inspections: 0,
            total_rejections: 0,
            obs_scratch: Vec::new(),
            res_scratch: Vec::new(),
        }
    }

    fn run(
        mut self,
        policy: &mut dyn SchedulingPolicy,
        inspector: &mut dyn InspectorHook,
    ) -> SimResult {
        loop {
            self.admit_arrivals();
            if self.queue.is_empty() {
                if self.next_arrival < self.jobs.len() {
                    self.now = self.now.max(self.jobs[self.next_arrival].submit);
                    self.cluster.release_up_to(self.now);
                    continue;
                }
                break; // no waiting jobs, no future arrivals: done
            }

            let qpos = self.select(policy);
            let jidx = self.queue[qpos];
            let job = self.jobs[jidx];

            // Jobs over the rejection cap are no longer inspected (§3.2).
            if self.rejections[jidx] < self.config.max_rejections {
                self.inspections += 1;
                let obs = self.observe(jidx);
                let rejected = inspector.inspect(&obs);
                // Reclaim the observation's queue buffer for the next
                // scheduling point.
                self.obs_scratch = obs.queue;
                if self.telemetry.is_enabled() {
                    let total = self.cluster.total_procs();
                    let busy = total - self.cluster.free_procs();
                    self.telemetry.gauge("sim.util", busy as f64 / total as f64);
                    self.telemetry
                        .count(if rejected { "sim.reject" } else { "sim.accept" }, 1);
                }
                if rejected {
                    self.total_rejections += 1;
                    self.rejections[jidx] += 1;
                    self.advance_after_rejection();
                    continue;
                }
            }

            self.queue.swap_remove(qpos);
            self.wait_and_start(job, self.rejections[jidx], policy);
        }
        SimResult {
            outcomes: self.outcomes,
            total_procs: self.cluster.total_procs(),
            inspections: self.inspections,
            rejections: self.total_rejections,
        }
    }

    fn admit_arrivals(&mut self) {
        while self.next_arrival < self.jobs.len() && self.jobs[self.next_arrival].submit <= self.now
        {
            self.queue.push(self.next_arrival);
            self.next_arrival += 1;
        }
    }

    /// Index *within the queue* of the job the policy selects (for
    /// heuristics: lowest score, ties broken by smaller job id).
    ///
    /// A policy returning an out-of-range index is a bug; it fails loudly
    /// in every build profile rather than being clamped to a valid job.
    fn select(&mut self, policy: &mut dyn SchedulingPolicy) -> usize {
        let ctx = PolicyContext {
            now: self.now,
            total_procs: self.cluster.total_procs(),
            free_procs: self.cluster.free_procs(),
        };
        let pos = policy.select(&self.queue, self.jobs, &ctx);
        if pos >= self.queue.len() {
            panic!(
                "policy {:?} selected queue position {pos}, but the queue holds {} jobs",
                policy.name(),
                self.queue.len(),
            );
        }
        pos
    }

    fn observe(&mut self, jidx: usize) -> Observation {
        let job = self.jobs[jidx];
        let runnable = self.cluster.can_run(job.procs);
        let backfillable = if self.config.backfill && !runnable {
            match self
                .cluster
                .reservation_with(job.procs, self.now, &mut self.res_scratch)
            {
                Some((t_res, extra)) => count_backfillable(
                    self.queue
                        .iter()
                        .filter(|&&q| q != jidx)
                        .map(|&q| self.jobs[q]),
                    self.now,
                    &self.cluster,
                    t_res,
                    extra,
                ),
                None => 0,
            }
        } else {
            0
        };
        let mut queue = std::mem::take(&mut self.obs_scratch);
        queue.clear();
        queue.extend(self.queue.iter().filter(|&&q| q != jidx).map(|&q| {
            let j = &self.jobs[q];
            QueueEntry {
                id: j.id,
                wait: self.now - j.submit,
                estimate: j.estimate,
                procs: j.procs,
            }
        }));
        Observation {
            now: self.now,
            job,
            wait: self.now - job.submit,
            rejections: self.rejections[jidx],
            max_rejections: self.config.max_rejections,
            free_procs: self.cluster.free_procs(),
            total_procs: self.cluster.total_procs(),
            runnable,
            backfill_enabled: self.config.backfill,
            backfillable,
            queue,
        }
    }

    /// After a rejection: move to the next scheduling point — the next
    /// arrival, the next completion, or `now + MAX_INTERVAL`, whichever
    /// comes first.
    fn advance_after_rejection(&mut self) {
        let mut t_next = self.now + self.config.max_interval;
        if self.next_arrival < self.jobs.len() {
            t_next = t_next.min(self.jobs[self.next_arrival].submit);
        }
        if let Some(tc) = self.cluster.next_completion() {
            t_next = t_next.min(tc);
        }
        debug_assert!(t_next > self.now, "scheduling point must advance time");
        self.now = t_next;
        self.cluster.release_up_to(self.now);
    }

    /// Commit to `job`: wait (backfilling meanwhile if enabled) until it can
    /// start, then start it.
    fn wait_and_start(&mut self, job: Job, rejections: u32, policy: &mut dyn SchedulingPolicy) {
        while !self.cluster.can_run(job.procs) {
            if self.config.backfill {
                self.backfill_pass(&job, policy);
                if self.cluster.can_run(job.procs) {
                    break;
                }
            }
            // Advance to the next event — a completion or an arrival (new
            // arrivals matter because they may backfill into the hole).
            let tc = self
                .cluster
                .next_completion()
                .expect("job cannot run on an idle cluster: trace validation should prevent this");
            let t_next = match self.jobs.get(self.next_arrival) {
                Some(next) if next.submit < tc => next.submit,
                _ => tc,
            };
            self.now = self.now.max(t_next);
            self.cluster.release_up_to(self.now);
            self.admit_arrivals();
        }
        self.start_job(job, rejections, false, policy);
    }

    /// One EASY pass: start every queued job that cannot delay the
    /// committed job's reservation, in policy-priority order.
    fn backfill_pass(&mut self, committed: &Job, policy: &mut dyn SchedulingPolicy) {
        loop {
            let Some((t_res, extra)) =
                self.cluster
                    .reservation_with(committed.procs, self.now, &mut self.res_scratch)
            else {
                return;
            };
            let ctx = PolicyContext {
                now: self.now,
                total_procs: self.cluster.total_procs(),
                free_procs: self.cluster.free_procs(),
            };
            let mut best: Option<(usize, (f64, u64))> = None;
            for (pos, &jidx) in self.queue.iter().enumerate() {
                let j = &self.jobs[jidx];
                if !can_backfill(j, self.now, &self.cluster, t_res, extra) {
                    continue;
                }
                let key = (policy.score(j, &ctx), j.id);
                if best.is_none_or(|(_, bk)| key.0 < bk.0 || (key.0 == bk.0 && key.1 < bk.1)) {
                    best = Some((pos, key));
                }
            }
            let Some((pos, _)) = best else { return };
            let jidx = self.queue.swap_remove(pos);
            let job = self.jobs[jidx];
            let rejections = self.rejections[jidx];
            self.start_job(job, rejections, true, policy);
        }
    }

    fn start_job(
        &mut self,
        job: Job,
        rejections: u32,
        backfilled: bool,
        policy: &mut dyn SchedulingPolicy,
    ) {
        debug_assert!(self.cluster.can_run(job.procs));
        if backfilled {
            self.telemetry.count("sim.backfill", 1);
        }
        self.cluster
            .start(job.id, job.procs, self.now, job.runtime, job.estimate);
        policy.on_start(&job, self.now);
        self.outcomes.push(JobOutcome {
            id: job.id,
            submit: job.submit,
            start: self.now,
            end: self.now + job.runtime,
            runtime: job.runtime,
            procs: job.procs,
            backfilled,
            rejections,
        });
    }
}
