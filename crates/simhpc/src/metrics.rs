//! Job-execution performance metrics (§2.1, §4.4.3, §4.4.4).

use serde::{Deserialize, Serialize};

/// The "interactive threshold" of the bounded slowdown (10 seconds).
pub const BSLD_THRESHOLD: f64 = 10.0;

/// The job-execution metric a scheduler/inspector optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Average bounded job slowdown (`bsld`).
    Bsld,
    /// Average job waiting time in seconds (`wait`).
    Wait,
    /// Maximal bounded job slowdown of the sequence (`mbsld`).
    MaxBsld,
}

impl Metric {
    /// Short name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Bsld => "bsld",
            Metric::Wait => "wait",
            Metric::MaxBsld => "mbsld",
        }
    }
}

impl std::str::FromStr for Metric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bsld" => Ok(Metric::Bsld),
            "wait" => Ok(Metric::Wait),
            "mbsld" | "maxbsld" => Ok(Metric::MaxBsld),
            other => Err(format!("unknown metric {other:?}")),
        }
    }
}

/// Execution record of one finished job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job id.
    pub id: u64,
    /// Submission time.
    pub submit: f64,
    /// Start time.
    pub start: f64,
    /// Completion time (start + actual runtime).
    pub end: f64,
    /// Actual runtime.
    pub runtime: f64,
    /// Allocated processors.
    pub procs: u32,
    /// Whether the job was started by backfilling.
    pub backfilled: bool,
    /// How many times the inspector rejected this job.
    pub rejections: u32,
}

impl JobOutcome {
    /// Waiting time `start − submit`.
    pub fn wait(&self) -> f64 {
        self.start - self.submit
    }

    /// Bounded slowdown `max((wait + exe) / max(exe, 10 s), 1)`.
    pub fn bsld(&self) -> f64 {
        ((self.wait() + self.runtime) / self.runtime.max(BSLD_THRESHOLD)).max(1.0)
    }
}

/// Result of simulating one job sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-job outcomes, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Total processors of the simulated cluster.
    pub total_procs: u32,
    /// Number of inspector consultations.
    pub inspections: u64,
    /// Number of rejections issued.
    pub rejections: u64,
}

impl SimResult {
    /// Average waiting time in seconds.
    pub fn wait(&self) -> f64 {
        self.mean(JobOutcome::wait)
    }

    /// Average bounded slowdown.
    pub fn bsld(&self) -> f64 {
        self.mean(JobOutcome::bsld)
    }

    /// Maximal bounded slowdown.
    pub fn mbsld(&self) -> f64 {
        self.outcomes
            .iter()
            .map(JobOutcome::bsld)
            .fold(0.0, f64::max)
    }

    /// Makespan: last completion − first submission.
    pub fn makespan(&self) -> f64 {
        let first = self
            .outcomes
            .iter()
            .map(|o| o.submit)
            .fold(f64::INFINITY, f64::min);
        let last = self.outcomes.iter().map(|o| o.end).fold(0.0, f64::max);
        if self.outcomes.is_empty() {
            0.0
        } else {
            last - first
        }
    }

    /// System utilization: executed proc-seconds over available
    /// proc-seconds across the makespan (§4.4.4).
    pub fn util(&self) -> f64 {
        let span = self.makespan();
        if span <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .outcomes
            .iter()
            .map(|o| o.runtime * o.procs as f64)
            .sum();
        busy / (span * self.total_procs as f64)
    }

    /// Fraction of inspections that rejected (the Fig. 7 "Rejection Ratio").
    pub fn rejection_ratio(&self) -> f64 {
        if self.inspections == 0 {
            0.0
        } else {
            self.rejections as f64 / self.inspections as f64
        }
    }

    /// Value of the requested scalar metric.
    pub fn metric(&self, m: Metric) -> f64 {
        match m {
            Metric::Bsld => self.bsld(),
            Metric::Wait => self.wait(),
            Metric::MaxBsld => self.mbsld(),
        }
    }

    fn mean(&self, f: impl Fn(&JobOutcome) -> f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(f).sum::<f64>() / self.outcomes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(submit: f64, start: f64, runtime: f64, procs: u32) -> JobOutcome {
        JobOutcome {
            id: 0,
            submit,
            start,
            end: start + runtime,
            runtime,
            procs,
            backfilled: false,
            rejections: 0,
        }
    }

    #[test]
    fn bsld_is_bounded_below_by_one() {
        let o = outcome(0.0, 0.0, 100.0, 1);
        assert_eq!(o.bsld(), 1.0);
    }

    #[test]
    fn bsld_uses_interactive_threshold() {
        // 2 s job waiting 8 s: (8+2)/max(2,10) = 1.0, not 5.0.
        let o = outcome(0.0, 8.0, 2.0, 1);
        assert_eq!(o.bsld(), 1.0);
        // 2 s job waiting 18 s: (18+2)/10 = 2.0.
        let o = outcome(0.0, 18.0, 2.0, 1);
        assert_eq!(o.bsld(), 2.0);
    }

    #[test]
    fn aggregate_metrics() {
        let r = SimResult {
            outcomes: vec![outcome(0.0, 10.0, 20.0, 2), outcome(5.0, 10.0, 40.0, 4)],
            total_procs: 8,
            inspections: 10,
            rejections: 4,
        };
        assert_eq!(r.wait(), 7.5);
        // bslds: (10+20)/20 = 1.5 and (5+40)/40 = 1.125.
        assert!((r.bsld() - (1.5 + 1.125) / 2.0).abs() < 1e-12);
        assert_eq!(r.mbsld(), 1.5);
        // makespan = 50 - 0; busy = 20*2 + 40*4 = 200; util = 200/400.
        assert_eq!(r.makespan(), 50.0);
        assert!((r.util() - 0.5).abs() < 1e-12);
        assert!((r.rejection_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_zero() {
        let r = SimResult {
            outcomes: vec![],
            total_procs: 4,
            inspections: 0,
            rejections: 0,
        };
        assert_eq!(r.wait(), 0.0);
        assert_eq!(r.util(), 0.0);
        assert_eq!(r.rejection_ratio(), 0.0);
    }

    #[test]
    fn metric_parsing() {
        assert_eq!("bsld".parse::<Metric>().unwrap(), Metric::Bsld);
        assert_eq!("WAIT".parse::<Metric>().unwrap(), Metric::Wait);
        assert_eq!("mbsld".parse::<Metric>().unwrap(), Metric::MaxBsld);
        assert!("xyz".parse::<Metric>().is_err());
    }
}
