//! Simulator configuration.

use serde::{Deserialize, Serialize};

/// Configuration of one simulation run.
///
/// Defaults follow the paper's §4.1: rejected decisions are retried after at
/// most `MAX_INTERVAL = 600 s`, and a job can be rejected at most
/// `MAX_REJECTION_TIMES = 72` times (so a job is delayed at most ~12 h).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Enable EASY backfilling while an accepted job waits for resources.
    pub backfill: bool,
    /// Maximal waiting time (seconds) before the base scheduler retries
    /// after a rejection (`MAX_INTERVAL`).
    pub max_interval: f64,
    /// Maximal number of rejections one job can receive
    /// (`MAX_REJECTION_TIMES`).
    pub max_rejections: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            backfill: false,
            max_interval: 600.0,
            max_rejections: 72,
        }
    }
}

impl SimConfig {
    /// Paper defaults with backfilling enabled (§4.4.5).
    pub fn with_backfill() -> Self {
        SimConfig {
            backfill: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.max_interval, 600.0);
        assert_eq!(c.max_rejections, 72);
        assert!(!c.backfill);
        assert!(SimConfig::with_backfill().backfill);
    }
}
