//! Offline dev stub for `criterion` (see `devstubs/README.md`).
//!
//! Runs each registered benchmark for a short, bounded time and prints a
//! single `name ... ns/iter` line. Supports the subset of the API this
//! workspace uses; in test mode (`--test`, as passed by `cargo test`)
//! each benchmark body executes exactly once.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .cloned();
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn final_summary(&self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: &mut F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            budget: if self.test_mode { Duration::ZERO } else { self.measurement_time },
            warm_up: if self.test_mode { Duration::ZERO } else { self.warm_up_time },
            samples: self.sample_size,
            ns_per_iter: 0.0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {name} ... ok (bench stub)");
        } else {
            println!("{name:<50} {:>14.1} ns/iter", bencher.ns_per_iter);
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    samples: usize,
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(body());
        }
        let mut iters = 0u64;
        let per_sample = self.budget.max(Duration::from_micros(1)) / self.samples as u32;
        let start = Instant::now();
        loop {
            std::hint::black_box(body());
            iters += 1;
            if start.elapsed() >= per_sample || (self.budget.is_zero() && iters >= 1) {
                break;
            }
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
