//! Offline dev stub for `serde` (see `devstubs/README.md`).
//!
//! The traits are markers with blanket impls and the derives expand to
//! nothing: `#[derive(Serialize, Deserialize)]` and `Serialize`/
//! `Deserialize` bounds type-check, but no (de)serialization code is
//! generated. The workspace's persistence paths use their own text
//! formats and never call into serde's runtime.

pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization alias matching serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
