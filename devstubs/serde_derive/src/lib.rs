//! Offline dev stub for `serde_derive`: the derives accept `#[serde(..)]`
//! attributes and expand to nothing (the stub `serde` traits have blanket
//! impls, so no generated code is needed).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
