//! Offline dev stub for `rand` 0.10 (see `devstubs/README.md`).
//!
//! Implements the subset of the API this workspace uses: the `Rng` core
//! trait, the `RngExt` extension trait (`random`, `random_range`),
//! `SeedableRng::seed_from_u64`, and a deterministic `rngs::StdRng`
//! (SplitMix64-seeded xoshiro256**). The generated stream differs from
//! the real crate's `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core random-number source.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly distributed value of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly distributed value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types with a "standard" uniform distribution (`[0, 1)` for floats,
/// full range for integers).
pub trait StandardUniform: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let u = <$t as StandardUniform>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let f: f64 = a.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = a.random();
            assert!((0.0..1.0).contains(&g));
            let n = a.random_range(3usize..=9);
            assert!((3..=9).contains(&n));
            let m = a.random_range(-5i64..5);
            assert!((-5..5).contains(&m));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
