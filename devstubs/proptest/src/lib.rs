//! Offline dev stub for `proptest` (see `devstubs/README.md`).
//!
//! A tiny functional strategy framework covering the subset this
//! workspace uses: range and tuple strategies, `prop_map`,
//! `prop::collection::vec`, `any`, `prop_oneof!`, and the `proptest!`
//! macro. Cases are generated from a fixed seed; failures are plain
//! assertion panics and there is no shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic SplitMix64 case generator.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn usize_in(&mut self, lo: usize, hi_inclusive: usize) -> usize {
            debug_assert!(lo <= hi_inclusive);
            let span = (hi_inclusive - lo) as u128 + 1;
            lo + (self.next_u64() as u128 % span) as usize
        }
    }

    /// Mirror of `ProptestConfig` — only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

use test_runner::TestRng;

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { source: self, map: f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// String strategies from a small regex subset: a single character class
/// (`[a-z_.]`-style, ranges and literals) with an optional `{n,m}`
/// repetition. Anything else is generated literally.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = match parse_char_class(self) {
            Some(parsed) => parsed,
            None => return self.to_string(),
        };
        let len = rng.usize_in(min, max);
        (0..len).map(|_| class[rng.usize_in(0, class.len() - 1)]).collect()
    }
}

fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let mut class = Vec::new();
    let chars: Vec<char> = rest[..close].chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            class.extend(chars[i]..=chars[i + 2]);
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((class, 1, 1));
    }
    let bounds = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match bounds.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = bounds.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((class, lo, hi))
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod strategy {
    use super::{test_runner::TestRng, Strategy};

    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V>(pub Vec<Box<dyn Strategy<Value = V>>>);

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one alternative");
            let idx = rng.usize_in(0, self.0.len() - 1);
            self.0[idx].generate(rng)
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types usable with `any::<T>()`.
pub trait ArbitraryValue {
    fn arbitrary_from(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary_from(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary_from(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary_from(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2.0 - 1.0
    }
}

impl ArbitraryValue for f32 {
    fn arbitrary_from(rng: &mut TestRng) -> Self {
        (rng.unit_f64() * 2.0 - 1.0) as f32
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_from(rng)
    }
}

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by [`vec`].
    pub trait SizeBounds {
        fn bounds(self) -> (usize, usize);
    }

    impl SizeBounds for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl SizeBounds for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.min, self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let mut alts: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec::Vec::new();
        $(alts.push(::std::boxed::Box::new($s));)+
        $crate::strategy::OneOf(alts)
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::new(0x5EED_CA5E ^ (stringify!($name).len() as u64));
                for __case in 0..__config.cases {
                    let _ = __case;
                    let mut __run = || -> ::core::result::Result<(), ()> {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __run().expect("proptest case returned Err");
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 3u32..10, v in prop::collection::vec(0.0f64..1.0, 0..5), b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
            let _ = b;
        }

        #[test]
        fn maps_and_oneof(y in prop_oneof![(0u32..4).prop_map(|v| v * 2), (10u32..12).prop_map(|v| v + 1)]) {
            prop_assert!(y % 2 == 0 && y < 8 || (11..=12).contains(&y));
        }
    }
}
